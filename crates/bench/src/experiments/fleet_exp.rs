//! E27: planet-scale fleet — availability and global p99 through a
//! flash crowd and a full cell loss, geo-failover + autoscaling vs
//! serve-through, across autoscaler aggressiveness.
//!
//! TPUv4i's Lesson 5 (deployment in air-cooled datacenters worldwide)
//! at control-plane scale: three serving cells ride a diurnal traffic
//! cycle, a flash crowd lands mid-run, and one cell then suffers a full
//! correlated outage. The serve-through arm keeps routing at the dead
//! cell by static capacity weights; the geo-failover arms detect the
//! outage after one control epoch and redirect around it (paying a WAN
//! latency penalty), while the autoscaler — at increasing step
//! aggressiveness — grows the surviving cells toward the utilization
//! target through the provisioning lag.
//!
//! Paper-shape expectation: serve-through availability collapses by
//! roughly the dead cell's traffic share times the outage's fraction of
//! the run; geo-failover recovers most of it, and autoscaling recovers
//! more of the flash crowd the more aggressive the step — at the cost
//! of capacity churn (scale-ups the diurnal trough then unwinds).

use tpu_arch::catalog;
use tpu_core::{ProfiledApp, DEFAULT_SWEEP_SEED};
use tpu_hlo::CompilerOptions;
use tpu_serving::fleet::{
    simulate_global, AutoscalerConfig, Cell, CellFault, CellFaultKind, GeoPolicy, GlobalConfig,
    GlobalReport, TrafficModel,
};
use tpu_workloads::zoo;

use crate::multiseed::{Envelope, MultiSeedRunner};
use crate::util::{f, Table};

/// One arm of the E27 sweep.
///
/// Scalar fields are the canonical replication (seed
/// [`DEFAULT_SWEEP_SEED`], replication 0); the envelopes fold all
/// [`REPLICATIONS`] seeds. Traffic shape and the fault schedule are
/// identical across arms — only the control plane differs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweepPoint {
    /// Whether the geo balancer redirects around detected-down and
    /// overloaded cells.
    pub failover: bool,
    /// Autoscaler step aggressiveness (0 = frozen fleet).
    pub step_servers: usize,
    /// Fraction of offered requests served within deadline.
    pub availability: f64,
    /// Availability across all seeded replications.
    pub availability_env: Envelope,
    /// Global p99 over all completions, ms (redirect penalty included).
    pub p99_ms: f64,
    /// p99 across all seeded replications, ms.
    pub p99_env: Envelope,
    /// In-deadline completions per second.
    pub goodput_rps: f64,
    /// Cross-cell redirected requests.
    pub redirected: u64,
    /// Requests the geo balancer could place nowhere.
    pub lb_shed: u64,
    /// Requests destroyed by the cell outage.
    pub infra_lost: u64,
    /// Autoscaler scale-up decisions.
    pub scale_ups: u64,
    /// Most servers ever active globally.
    pub peak_servers: usize,
}

/// Serving cells in the E27 fleet.
pub const CELLS: usize = 3;
/// Initial replicas per cell (the autoscaler may double them).
pub const SERVERS_PER_CELL: usize = 2;
/// Offered base load as a fraction of the initial fleet's capacity.
pub const LOAD_FRACTION: f64 = 0.65;
/// Offered requests per run (approximate; arrivals are Poisson).
pub const REQUESTS: usize = 5000;
/// Seeded replications per arm.
pub const REPLICATIONS: usize = 3;
/// Control epochs in the run.
pub const EPOCHS: usize = 12;

/// E27 data: BERT0 across [`CELLS`] TPUv4i cells under a diurnal cycle,
/// a 1.8x flash crowd, and a full outage of cell 0 for a third of the
/// run. The app is profiled once; each arm replicates the global run
/// across [`REPLICATIONS`] seeds in parallel.
pub fn fleet_data() -> Vec<FleetSweepPoint> {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let profiled = ProfiledApp::new(&app, &chip, &options)
        .expect("BERT0 profiles and the fleet config is valid");
    let cap = profiled.capacity_rps();
    let base_rps = LOAD_FRACTION * cap * (CELLS * SERVERS_PER_CELL) as f64;
    let horizon_s = REQUESTS as f64 / base_rps;
    let epoch_s = horizon_s / EPOCHS as f64;

    let config = |failover: bool, step: usize, seed: u64| GlobalConfig {
        cells: (0..CELLS)
            .map(|_| {
                Cell::new(
                    profiled.cell_template(SERVERS_PER_CELL),
                    cap,
                    SERVERS_PER_CELL * 2,
                )
            })
            .collect(),
        traffic: TrafficModel::diurnal(base_rps, 0.35, horizon_s).with_flash(
            0.45 * horizon_s,
            0.15 * horizon_s,
            1.8,
        ),
        cell_faults: vec![CellFault {
            cell: 0,
            at_s: 0.38 * horizon_s,
            duration_s: 0.33 * horizon_s,
            kind: CellFaultKind::Outage,
        }],
        autoscaler: AutoscalerConfig {
            enabled: step > 0,
            target_utilization: 0.6,
            step_servers: step.max(1),
            provisioning_lag_epochs: 1,
        },
        geo: GeoPolicy {
            failover,
            redirect_latency_s: profiled.operating_point().slo_s * 0.2,
            overload_threshold: 1.1,
            detect_epochs: 1,
        },
        epoch_s,
        horizon_s,
        seed,
    };

    let runner = MultiSeedRunner::new(DEFAULT_SWEEP_SEED, REPLICATIONS);
    let arms: &[(bool, usize)] = &[(false, 0), (true, 0), (true, 1), (true, 2)];
    arms.iter()
        .map(|&(failover, step)| {
            let reps: Vec<GlobalReport> = runner.run(|seed| {
                let r = simulate_global(profiled.latency_model(), &config(failover, step, seed))
                    .expect("BERT0 profiles and the fleet config is valid");
                assert!(
                    r.conservation_holds(),
                    "global conservation violated (seed {seed})"
                );
                r
            });
            let canonical = &reps[0];
            FleetSweepPoint {
                failover,
                step_servers: step,
                availability: canonical.availability,
                availability_env: Envelope::from_samples(
                    &reps.iter().map(|r| r.availability).collect::<Vec<_>>(),
                ),
                p99_ms: canonical.p99_s * 1e3,
                p99_env: Envelope::from_samples(
                    &reps.iter().map(|r| r.p99_s * 1e3).collect::<Vec<_>>(),
                ),
                goodput_rps: canonical.goodput_rps,
                redirected: canonical.redirected,
                lb_shed: canonical.lb_shed,
                infra_lost: canonical.cells.iter().map(|c| c.infra_lost).sum(),
                scale_ups: canonical.autoscaler.scale_ups,
                peak_servers: canonical.autoscaler.peak_servers,
            }
        })
        .collect()
}

/// E27 (extension) — planet-scale availability through a flash crowd
/// and a full cell loss.
pub fn e27_fleet() -> String {
    let mut t = Table::new(&[
        "geo policy",
        "scale step",
        "avail",
        "avail ±ci95",
        "p99 ms",
        "p99 ±ci95",
        "goodput/s",
        "redirected",
        "lb shed",
        "infra lost",
        "scale-ups",
        "peak srv",
    ]);
    for p in fleet_data() {
        t.row(vec![
            if p.failover {
                "geo-failover"
            } else {
                "serve-through"
            }
            .to_owned(),
            if p.step_servers == 0 {
                "frozen".to_owned()
            } else {
                format!("+-{}", p.step_servers)
            },
            f(p.availability, 3),
            p.availability_env.pm(3),
            f(p.p99_ms, 2),
            p.p99_env.pm(2),
            f(p.goodput_rps, 0),
            p.redirected.to_string(),
            p.lb_shed.to_string(),
            p.infra_lost.to_string(),
            p.scale_ups.to_string(),
            p.peak_servers.to_string(),
        ]);
    }
    format!(
        "E27 (extension) — planet-scale fleet: BERT0 across {CELLS} TPUv4i cells x{SERVERS_PER_CELL}, \
         diurnal ±35% at {} of fleet capacity, 1.8x flash crowd, full cell-0 outage for 1/3 of the run \
         ({REPLICATIONS} seeded replications per arm)\n{}",
        f(LOAD_FRACTION, 2),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e27_geo_failover_and_autoscaling_beat_serve_through() {
        let data = fleet_data();
        let at = |failover: bool, step: usize| {
            data.iter()
                .find(|p| p.failover == failover && p.step_servers == step)
                .expect("arm present")
        };
        let serve_through = at(false, 0);
        let failover_frozen = at(true, 0);
        let scaled = at(true, 2);

        // Serve-through loses the dead cell's traffic; failover loses
        // (almost) only the detection epoch.
        assert!(serve_through.infra_lost > 5 * failover_frozen.infra_lost.max(1));
        assert_eq!(serve_through.redirected, 0);
        assert!(failover_frozen.redirected > 0);

        // The acceptance bar: geo-failover + autoscaling measurably
        // beats serve-through on availability through the same flash
        // crowd and cell loss.
        assert!(
            scaled.availability > serve_through.availability + 0.02,
            "scaled {} not measurably above serve-through {}",
            scaled.availability,
            serve_through.availability
        );
        // Autoscaling actually acted and never exceeded the ceiling.
        assert!(scaled.scale_ups > 0);
        assert!(scaled.peak_servers <= CELLS * SERVERS_PER_CELL * 2);
        // Monotone lever: more aggressive scaling never hurts
        // availability in this regime.
        assert!(at(true, 2).availability >= at(true, 1).availability - 0.01);
    }
}
