//! E9 and E14: int8-vs-bf16 quality/performance, and backwards ML
//! compatibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tpu_arch::{catalog, Generation};
use tpu_hlo::{compile, CompilerOptions};
use tpu_numerics::accum::AccumOrder;
use tpu_numerics::{DType, ErrorStats, Quantized, Tensor};

use tpu_sim::Simulator;
use tpu_tco::deploy::{DeployModel, DeploymentPath};
use tpu_workloads::{production_apps, App, AppClass};

use crate::util::{f, Table};

/// Minimum output SQNR (dB) for int8 serving to preserve production
/// quality in this study's proxy.
pub const SERVABLE_SQNR_DB: f64 = 30.0;

/// One app's E9 row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRow {
    /// App name.
    pub app: String,
    /// int8-over-bf16 speedup on TPUv4i at batch 8.
    pub int8_speedup: f64,
    /// Weight-tensor SQNR after int8 quantization, dB.
    pub weight_sqnr_db: f64,
    /// End-to-end layer-output SQNR with int8 weights, dB.
    pub output_sqnr_db: f64,
    /// Output SQNR with *per-channel* int8 weights, dB — the mitigation
    /// the NPU literature uses to rescue heavy-tailed models.
    pub per_channel_sqnr_db: f64,
    /// Whether the proxy judges (per-tensor) int8 servable.
    pub int8_ok: bool,
    /// The production table's verdict (from the app spec).
    pub production_verdict: bool,
}

/// Synthetic weights matched to an app class's distribution: MLP/CNN
/// weights are well-conditioned; large LSTMs and BERTs carry heavy-tailed
/// *per-channel* outliers (a few output channels with large weights, as
/// observed in production transformers) that break per-tensor int8 — the
/// mechanism behind Lesson 6. Because the outliers are channel-
/// concentrated, per-channel quantization rescues them (see
/// [`QuantRow::per_channel_sqnr_db`]).
fn class_weights(app: &App, rows: usize, cols: usize, seed: u64) -> (Tensor, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (outlier_every, outlier_scale) = match (app.spec.class, app.spec.int8_servable) {
        (AppClass::Mlp, _) | (AppClass::Cnn, _) => (usize::MAX, 1.0),
        (_, true) => (128, 8.0),  // mild tails: still servable
        (_, false) => (32, 60.0), // heavy tails: per-tensor int8 breaks
    };
    let mut data = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let base: f32 = rng.gen_range(-0.05f32..0.05);
            data[r * cols + c] = if outlier_every != usize::MAX && c % outlier_every == 0 {
                base * outlier_scale
            } else {
                base
            };
        }
    }
    (Tensor::from_vec(&[rows, cols], data), outlier_every)
}

/// Error statistics restricted to the *bulk* (non-outlier) output
/// columns. Model quality lives in the typical channels; a per-tensor
/// scale blown up by a few outlier channels starves exactly these of
/// resolution, which an all-columns SQNR hides (the outliers dominate
/// signal power).
fn bulk_stats(y_ref: &Tensor, y_q: &Tensor, outlier_every: usize) -> ErrorStats {
    let cols = y_ref.shape()[1];
    let pick = |t: &Tensor| -> Vec<f32> {
        t.data()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                outlier_every == usize::MAX || !(i % cols).is_multiple_of(outlier_every)
            })
            .map(|(_, &v)| v)
            .collect()
    };
    ErrorStats::between(&pick(y_ref), &pick(y_q))
}

/// Per-channel (per output column) quantize→dequantize of a weight
/// matrix. `Quantized::per_channel` works on contiguous chunks, so we
/// quantize the transpose and transpose back.
fn per_channel_round_trip(w: &Tensor) -> Tensor {
    let (rows, cols) = (w.shape()[0], w.shape()[1]);
    let mut transposed = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            transposed[c * rows + r] = w.data()[r * cols + c];
        }
    }
    let q = Quantized::per_channel(&transposed, cols).expect("finite weights");
    let deq = q.dequantize();
    let mut back = vec![0.0f32; rows * cols];
    for c in 0..cols {
        for r in 0..rows {
            back[r * cols + c] = deq[c * rows + r];
        }
    }
    Tensor::from_vec(&[rows, cols], back)
}

/// E9 data: per-app int8 speedup and quality proxy.
pub fn e9_data() -> Vec<QuantRow> {
    let chip = catalog::tpu_v4i();
    let options = CompilerOptions::default();
    let sim = Simulator::new(chip.clone());
    production_apps()
        .iter()
        .enumerate()
        .map(|(i, app)| {
            // Performance: same graph, both precisions.
            let t_bf16 = {
                let g = app.build_with(8, DType::Bf16).expect("builds");
                let exe = compile(&g, &chip, &options).expect("compiles");
                sim.run(exe.plan()).expect("simulates").seconds
            };
            let t_int8 = {
                let g = app.build_with(8, DType::Int8).expect("builds");
                let exe = compile(&g, &chip, &options).expect("compiles");
                sim.run(exe.plan()).expect("simulates").seconds
            };
            // Quality proxy: one representative layer, scored on the
            // bulk (non-outlier) channels where model quality lives.
            let (w, outlier_every) = class_weights(app, 256, 256, 1000 + i as u64);
            let x = Tensor::random(&[64, 256], 77, 1.0);
            let wq = Quantized::per_tensor(w.data()).expect("finite weights");
            let weight_stats = wq.error_vs(w.data());
            let w_deq = Tensor::from_vec(w.shape(), wq.dequantize());
            let y_ref = x.matmul(&w, AccumOrder::Sequential);
            let y_q = x.matmul(&w_deq, AccumOrder::Sequential);
            let out_stats = bulk_stats(&y_ref, &y_q, outlier_every);
            let w_pc = per_channel_round_trip(&w);
            let y_pc = x.matmul(&w_pc, AccumOrder::Sequential);
            let pc_stats = bulk_stats(&y_ref, &y_pc, outlier_every);
            QuantRow {
                app: app.spec.name.to_owned(),
                int8_speedup: t_bf16 / t_int8,
                weight_sqnr_db: weight_stats.sqnr_db,
                output_sqnr_db: out_stats.sqnr_db,
                per_channel_sqnr_db: pc_stats.sqnr_db,
                int8_ok: out_stats.sqnr_db >= SERVABLE_SQNR_DB,
                production_verdict: app.spec.int8_servable,
            }
        })
        .collect()
}

/// E9 — int8 vs bf16: the speedup is real, but some apps cannot take it.
pub fn e9_int8_vs_bf16() -> String {
    let mut t = Table::new(&[
        "app",
        "int8 speedup",
        "weight SQNR dB",
        "output SQNR dB",
        "per-channel dB",
        "proxy int8 OK",
        "production verdict",
    ]);
    for r in e9_data() {
        t.row(vec![
            r.app,
            format!("{}x", f(r.int8_speedup, 2)),
            f(r.weight_sqnr_db, 1),
            f(r.output_sqnr_db, 1),
            f(r.per_channel_sqnr_db, 1),
            if r.int8_ok { "yes" } else { "NO" }.to_owned(),
            if r.production_verdict { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    format!(
        "E9 / Table — int8 vs bf16 (Lesson 6: some inference needs floating point; \
         proxy threshold {SERVABLE_SQNR_DB} dB)\n{}",
        t.render()
    )
}

/// The E14 results bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct CompatResult {
    /// v4i-native vs v3-order matmul results are bit-identical.
    pub v3_order_bit_exact: bool,
    /// v4i-native vs v1-order matmul results differ (256-wide array).
    pub v1_order_differs: bool,
    /// Latency overhead of bit-exact v1 emulation on TPUv4i (ratio).
    pub v1_emulation_overhead: f64,
    /// Days to deploy per path: (bit-exact, revalidate, quantize-int8).
    pub deploy_days: (f64, f64, f64),
    /// The decode error when feeding a TPUv3 binary to TPUv4i.
    pub cross_binary_error: String,
}

/// E14 data: backwards ML compatibility end to end.
pub fn e14_data() -> CompatResult {
    // (a) Numerics: the same matmul under each generation's order.
    let a = Tensor::random(&[32, 512], 5, 100.0);
    let b = Tensor::random(&[512, 32], 6, 100.0);
    let v4i_native = a.matmul_bf16(&b, AccumOrder::systolic(128));
    let v3_order = a.matmul_bf16(&b, AccumOrder::systolic(128));
    let v1_order = a.matmul_bf16(&b, AccumOrder::systolic(256));
    let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|x| x.to_bits()).collect() };
    let v3_order_bit_exact = bits(&v4i_native) == bits(&v3_order);
    let v1_order_differs = bits(&v4i_native) != bits(&v1_order);

    // (b) Performance cost of bit-exact v1 emulation on TPUv4i.
    let chip = catalog::tpu_v4i();
    let app = tpu_workloads::zoo::mlp0();
    let g = app.build(8).expect("builds");
    let sim = Simulator::new(chip.clone());
    let native = compile(&g, &chip, &CompilerOptions::default()).expect("compiles");
    let compat_opts = CompilerOptions {
        bit_exact_with: Some(Generation::TpuV1),
        ..CompilerOptions::default()
    };
    let compat = compile(&g, &chip, &compat_opts).expect("compiles");
    let t_native = sim.run(native.plan()).expect("simulates").seconds;
    let t_compat = sim.run(compat.plan()).expect("simulates").seconds;

    // (c) Deployment timeline.
    let d = DeployModel::default();
    let deploy_days = (
        d.time_to_deploy_days(DeploymentPath::BitExactCompatible),
        d.time_to_deploy_days(DeploymentPath::Revalidate),
        d.time_to_deploy_days(DeploymentPath::QuantizeInt8),
    );

    // (d) Binary incompatibility (Lesson 2's flip side).
    let v3 = catalog::tpu_v3();
    let v3_exe = compile(&g, &v3, &CompilerOptions::no_cmem()).expect("compiles");
    let bytes = v3_exe.binary().expect("encodes");
    let cross_binary_error = tpu_isa::decode(&bytes, Generation::TpuV4i)
        .expect_err("cross-generation decode must fail")
        .to_string();

    CompatResult {
        v3_order_bit_exact,
        v1_order_differs,
        v1_emulation_overhead: t_compat / t_native,
        deploy_days,
        cross_binary_error,
    }
}

/// E14 — backwards ML compatibility (Lesson 4) and binary
/// incompatibility (Lesson 2).
pub fn e14_backwards_compat() -> String {
    let r = e14_data();
    let mut out = String::from("E14 — backwards ML compatibility (Lessons 2 and 4)\n");
    out.push_str(&format!(
        "  v4i reproduces TPUv2/v3 numerics bit-exactly (same 128-wide order): {}\n",
        r.v3_order_bit_exact
    ));
    out.push_str(&format!(
        "  TPUv1's 256-wide order differs bit-for-bit from v4i native:        {}\n",
        r.v1_order_differs
    ));
    out.push_str(&format!(
        "  latency overhead of bit-exact TPUv1 emulation on v4i:              {}x\n",
        f(r.v1_emulation_overhead, 2)
    ));
    out.push_str(&format!(
        "  time-to-deploy: bit-exact {} d, revalidate {} d, quantize-int8 {} d\n",
        f(r.deploy_days.0, 0),
        f(r.deploy_days.1, 0),
        f(r.deploy_days.2, 0)
    ));
    out.push_str(&format!(
        "  TPUv3 binary on TPUv4i: \"{}\"\n  (compiler compatibility, not binary compatibility, carries software forward)\n",
        r.cross_binary_error
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_per_channel_rescues_heavy_tailed_apps() {
        for row in e9_data() {
            // Per-channel never does worse than per-tensor.
            assert!(
                row.per_channel_sqnr_db >= row.output_sqnr_db - 1.0,
                "{}",
                row.app
            );
            if !row.production_verdict {
                // The FP-only apps fail per-tensor but clear the bar with
                // per-channel scales — the known mitigation.
                assert!(!row.int8_ok, "{}", row.app);
                assert!(
                    row.per_channel_sqnr_db >= SERVABLE_SQNR_DB,
                    "{}: per-channel {:.1} dB",
                    row.app,
                    row.per_channel_sqnr_db
                );
            }
        }
    }

    #[test]
    fn e14_shapes() {
        let r = e14_data();
        assert!(r.v3_order_bit_exact);
        assert!(r.v1_order_differs);
        assert!(r.v1_emulation_overhead > 1.0);
        assert!(r.deploy_days.0 < r.deploy_days.1);
        assert!(r.deploy_days.1 < r.deploy_days.2);
        assert!(r.cross_binary_error.contains("different chip"));
    }
}
