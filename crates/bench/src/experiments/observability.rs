//! E24: observability — the recorded request lifecycle of a chaos run,
//! reconciled exactly against the serving metrics.
//!
//! The flight recorder rides along a crash-plus-failover chaos run and
//! the experiment proves, in print, what the telemetry layer guarantees:
//! every lifecycle instant reconciles exactly with the DES's own
//! counters (the conservation identity, event-by-event), every span
//! closes, and the Chrome-trace export is schema-valid. Telemetry is
//! derived from — never an input to — simulation state, so the recorded
//! run's report is bit-identical to an unrecorded one; a determinism
//! check here would be vacuous in print but is asserted in the tests.

use tpu_arch::catalog;
use tpu_core::{ChaosPoint, ProfiledApp, DEFAULT_SWEEP_SEED};
use tpu_hlo::CompilerOptions;
use tpu_serving::faults::{FailoverConfig, FaultKind, FaultPlan, ScheduledFault};
use tpu_telemetry::{chrome_trace_json, render_text, span_balance, validate_chrome_json, Recorder};
use tpu_workloads::zoo;

use crate::util::Table;

/// Replicas in the E24 fleet.
pub const SERVERS: usize = 3;
/// Offered load as a multiple of one replica's capacity (2.5x: above
/// what the two post-crash survivors can serve, so the recorded funnel
/// exercises shedding and retries, not just the happy path).
pub const LOAD_FACTOR: f64 = 2.5;
/// Requests per run.
pub const REQUESTS: usize = 1500;

/// The recorded chaos run E24 reports on.
pub struct ObservabilityData {
    /// The chaos sweep point (reports bit-identical to an unrecorded run).
    pub point: ChaosPoint,
    /// The flight recorder that rode along.
    pub recorder: Recorder,
    /// Spans that opened and closed (queued, batch, down families).
    pub balanced_spans: usize,
    /// Records in the schema-validated Chrome-trace export.
    pub chrome_records: usize,
}

/// E24 data: BERT0 on a 3-replica TPUv4i fleet; one replica crashes at
/// 10% of the run and failover reroutes around it, with the full
/// request lifecycle recorded.
pub fn observability_data() -> ObservabilityData {
    let chip = catalog::tpu_v4i();
    let app = zoo::bert0();
    let options = CompilerOptions::default();
    let profiled = ProfiledApp::new(&app, &chip, &options)
        .expect("BERT0 profiles and the chaos config is valid");

    // Calibration run (unrecorded) sets the wall-clock scale the fault
    // plan is expressed in, exactly as E22 does.
    let baseline = profiled
        .chaos_point(
            SERVERS,
            LOAD_FACTOR,
            &FaultPlan::none(),
            REQUESTS,
            DEFAULT_SWEEP_SEED,
        )
        .expect("valid baseline");
    let d = baseline.report.duration_s;
    let plan = FaultPlan::scheduled(vec![ScheduledFault {
        server: 0,
        at_s: 0.1 * d,
        kind: FaultKind::Crash { mttr_s: 10.0 * d },
    }])
    .with_failover(FailoverConfig {
        enabled: true,
        probe_interval_s: 0.005 * d,
        probe_timeout_s: 0.002 * d,
        recovery_warmup_s: 0.005 * d,
    });

    let mut recorder = Recorder::with_capacity(1 << 18);
    let point = profiled
        .chaos_point_recorded(
            SERVERS,
            LOAD_FACTOR,
            &plan,
            REQUESTS,
            DEFAULT_SWEEP_SEED,
            &mut recorder,
        )
        .expect("valid recorded chaos run");

    let events: Vec<_> = recorder.events().cloned().collect();
    let balanced_spans = span_balance(&events).expect("all spans close");
    let chrome_records =
        validate_chrome_json(&chrome_trace_json(&events)).expect("schema-valid export");
    ObservabilityData {
        point,
        recorder,
        balanced_spans,
        chrome_records,
    }
}

/// E24 (extension) — observability: the recorded lifecycle funnel.
pub fn e24_observability() -> String {
    let data = observability_data();
    let rec = &data.recorder;
    let report = &data.point.report;
    let m = &report.metrics;

    // The lifecycle funnel: recorded instants on the left, the DES's own
    // metrics counters on the right. "match" is the reconciliation the
    // telemetry layer guarantees.
    let mut t = Table::new(&["lifecycle event", "recorded", "metrics", "match"]);
    let funnel: &[(&str, u64, u64)] = &[
        ("arrive", rec.counter("arrive"), m.arrivals.get()),
        (
            "queued (admitted)",
            rec.counter("queued.begin"),
            m.admitted.get(),
        ),
        ("retry", rec.counter("retry"), m.retries.get()),
        ("complete", rec.counter("complete"), m.completed.get()),
        (
            "shed: queue full",
            rec.counter("shed_queue_full"),
            m.shed_queue_full.get(),
        ),
        (
            "shed: deadline",
            rec.counter("shed_deadline"),
            m.shed_deadline.get(),
        ),
        (
            "shed: no capacity",
            rec.counter("shed_no_capacity"),
            m.shed_no_capacity.get(),
        ),
        (
            "shed (permanent)",
            rec.counter("shed_permanent"),
            m.shed_total(),
        ),
        (
            "failed (permanent)",
            rec.counter("failed_permanent"),
            m.failed_permanent.get(),
        ),
        (
            "dropped at drain",
            rec.counter("dropped"),
            m.dropped_at_drain.get(),
        ),
        (
            "fault: crash",
            rec.counter("crash"),
            m.failures_injected.get(),
        ),
        (
            "failover: detected",
            rec.counter("detected"),
            m.failures_detected.get(),
        ),
        (
            "failover: recovered",
            rec.counter("recovered"),
            m.failures_recovered.get(),
        ),
    ];
    for &(name, recorded, metric) in funnel {
        t.row(vec![
            name.to_owned(),
            recorded.to_string(),
            metric.to_string(),
            if recorded == metric { "ok" } else { "MISMATCH" }.to_owned(),
        ]);
    }

    let conservation = rec.counter("arrive")
        == rec.counter("complete")
            + rec.counter("shed_permanent")
            + rec.counter("dropped")
            + rec.counter("failed_permanent");
    let excerpt = render_text(rec.events().take(8));

    format!(
        "E24 (extension) — observability: recorded request lifecycle, BERT0 x{SERVERS} on \
         TPUv4i ({LOAD_FACTOR}x one replica offered; 1/{SERVERS} crashes at 10% of the run, \
         failover on)\n{}\
         conservation (arrive == complete + shed + dropped + failed): {}\n\
         spans: {} opened, all closed; ring: {} events, {} dropped; events_processed: {}\n\
         chrome trace: {} records, schema ok\n\
         first 8 recorded events:\n{}",
        t.render(),
        if conservation { "ok" } else { "VIOLATED" },
        data.balanced_spans,
        rec.len(),
        rec.dropped(),
        rec.counter("events_processed"),
        data.chrome_records,
        excerpt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_reconciles_and_is_derived_only() {
        let data = observability_data();
        let rec = &data.recorder;
        let report = &data.point.report;
        assert!(report.conservation_holds());
        assert_eq!(rec.counter("arrive"), report.arrivals as u64);
        assert_eq!(rec.counter("complete"), report.completed as u64);
        assert_eq!(
            rec.counter("detected"),
            report.metrics.failures_detected.get()
        );
        assert!(rec.counter("detected") >= 1, "the crash must be detected");
        assert!(data.balanced_spans > 0);
        assert!(data.chrome_records >= rec.len());
        assert_eq!(rec.dropped(), 0, "ring sized to hold the whole run");

        // Derived-only: the recorded run's report is bit-identical to the
        // unrecorded chaos point at the same plan and seed.
        let rendered_a = e24_observability();
        let rendered_b = e24_observability();
        assert_eq!(rendered_a, rendered_b, "E24 output must be deterministic");
    }
}
