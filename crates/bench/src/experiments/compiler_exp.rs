//! E26: Lesson 2 — compiler compatibility trumps binary compatibility.
//!
//! The paper's second lesson is that what carries across TPU
//! generations is the *source graph and the compiler*, not the compiled
//! binary: each generation re-extracts performance from the same model
//! with the optimizations contemporary to it. This experiment replays
//! that claim end to end. Every production app is first run through the
//! naive frontend ([`tpu_workloads::frontend::deoptimize`]) — flattened
//! weights behind reshapes, duplicated activations, dead branches, the
//! shape real exporters emit — then compiled twice per generation:
//! once with the frozen-binary stand-in (the O0 pipeline: what you get
//! if you never recompile) and once with that generation's own pipeline
//! ([`CompilerOptions::for_chip`]): fusion on TPUv2, plus constant
//! folding / DCE / simplification on TPUv3, plus CMEM placement on
//! TPUv4i. Every optimized compile is gated by the graph verifier and
//! the cost-model cross-check (`tpu_hlo::verify`, `tpu_hlo::passes`).
//!
//! The per-generation speedup envelopes fold the whole app zoo, so the
//! summary row shows the *fleet* compiler gain, not a cherry-pick.

use tpu_arch::{catalog, ChipConfig};
use tpu_hlo::{compile, CompilerOptions, OptLevel};
use tpu_sim::Simulator;
use tpu_workloads::{frontend, zoo};

use crate::multiseed::Envelope;
use crate::util::{f, Table};

/// Batch size all E26 compiles use.
pub const BATCH: u64 = 4;

/// One app on one generation: frozen-binary stand-in vs the
/// generation's own pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerPoint {
    /// Chip name (`"TPUv2"`, ...).
    pub chip: String,
    /// App name (`"MLP0"`, ...).
    pub app: &'static str,
    /// Graph nodes before the pass pipeline ran.
    pub nodes_before: usize,
    /// Graph nodes after.
    pub nodes_after: usize,
    /// Rewrites the pipeline applied (fixpoint total).
    pub passes_applied: usize,
    /// Weight bytes resident in CMEM after optimization, fraction.
    pub cmem_fraction: f64,
    /// Simulated latency of the O0 compile, ms.
    pub naive_ms: f64,
    /// Simulated latency of the generation's pipeline, ms.
    pub opt_ms: f64,
    /// Cost-model serial ceiling of the O0 compile, ms.
    pub naive_cost_ms: f64,
    /// Cost-model serial ceiling of the optimized compile, ms.
    pub opt_cost_ms: f64,
    /// `naive_ms / opt_ms`.
    pub speedup: f64,
}

/// Per-generation speedup summary across the whole zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationGain {
    /// Chip name.
    pub chip: String,
    /// Speedups of every app folded into one envelope.
    pub speedups: Envelope,
}

/// The generations E26 visits (TPUv1's pipeline *is* O0, so its
/// recompile gain is 1.0 by construction and it is omitted).
pub fn e26_chips() -> Vec<ChipConfig> {
    vec![catalog::tpu_v2(), catalog::tpu_v3(), catalog::tpu_v4i()]
}

/// E26 data: every production app, deoptimized, compiled per
/// generation with O0 and with the generation's contemporary pipeline.
pub fn compiler_data() -> (Vec<CompilerPoint>, Vec<GenerationGain>) {
    let frozen = CompilerOptions::level(OptLevel::O0);
    let mut points = Vec::new();
    let mut gains = Vec::new();
    for chip in e26_chips() {
        let options = CompilerOptions::for_chip(&chip);
        let sim = Simulator::new(chip.clone());
        let mut speedups = Vec::new();
        for app in zoo::production_apps() {
            let clean = app.build(BATCH).expect("zoo graphs build");
            let dirty = frontend::deoptimize(&clean).expect("deoptimize is total");
            let naive = compile(&dirty, &chip, &frozen).expect("O0 compile");
            let opt = compile(&dirty, &chip, &options).expect("pipeline compile");
            let naive_ms = sim.run(naive.plan()).expect("sim").seconds * 1e3;
            let opt_ms = sim.run(opt.plan()).expect("sim").seconds * 1e3;
            let speedup = naive_ms / opt_ms;
            speedups.push(speedup);
            points.push(CompilerPoint {
                chip: chip.name.clone(),
                app: app.spec.name,
                nodes_before: opt.pass_summary().nodes_before,
                nodes_after: opt.pass_summary().nodes_after,
                passes_applied: opt.pass_summary().applied.len(),
                cmem_fraction: opt.memory().cmem_fraction(),
                naive_ms,
                opt_ms,
                naive_cost_ms: naive.cost_estimate(&chip).upper_bound_s() * 1e3,
                opt_cost_ms: opt.cost_estimate(&chip).upper_bound_s() * 1e3,
                speedup,
            });
        }
        gains.push(GenerationGain {
            chip: chip.name.clone(),
            speedups: Envelope::from_samples(&speedups),
        });
    }
    (points, gains)
}

/// E26 (extension) — per-generation recompilation gains on
/// frontend-dirtied graphs.
pub fn e26_compiler() -> String {
    let (points, gains) = compiler_data();
    let mut t = Table::new(&[
        "chip",
        "app",
        "nodes",
        "rewrites",
        "cmem",
        "frozen ms",
        "recompiled ms",
        "cost ceil ms",
        "speedup",
    ]);
    for p in &points {
        t.row(vec![
            p.chip.clone(),
            p.app.to_owned(),
            format!("{}->{}", p.nodes_before, p.nodes_after),
            p.passes_applied.to_string(),
            format!("{}%", f(p.cmem_fraction * 100.0, 0)),
            f(p.naive_ms, 3),
            f(p.opt_ms, 3),
            format!("{}->{}", f(p.naive_cost_ms, 3), f(p.opt_cost_ms, 3)),
            format!("{}x", f(p.speedup, 2)),
        ]);
    }
    let mut s = Table::new(&["chip", "pipeline", "speedup (zoo envelope)"]);
    for (g, chip) in gains.iter().zip(e26_chips()) {
        let opts = CompilerOptions::for_chip(&chip);
        let pipeline = match (opts.fusion, opts.fold, opts.cmem) {
            (false, _, _) => "O0 (none)",
            (true, false, _) => "O1 (+fusion)",
            (true, true, false) => "O2 (+fold/dce/simplify)",
            (true, true, true) => "O3 (+cmem)",
        };
        s.row(vec![
            g.chip.clone(),
            pipeline.to_owned(),
            format!(
                "{}x mean  [{}x .. {}x]",
                f(g.speedups.mean, 2),
                f(g.speedups.min, 2),
                f(g.speedups.max, 2)
            ),
        ]);
    }
    format!(
        "E26 (extension) — Lesson 2: per-generation recompilation vs frozen binaries \
         (all {} apps, naive-frontend graphs, batch {BATCH}; verifier- and \
         cost-model-gated pass pipeline)\n{}\n{}",
        zoo::production_apps().len(),
        t.render(),
        s.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e26_gains_grow_with_compiler_maturity() {
        let (points, gains) = compiler_data();
        assert_eq!(points.len(), 8 * 3);
        assert_eq!(gains.len(), 3);
        // Recompiling never loses, on any app, on any generation.
        for p in &points {
            assert!(
                p.speedup >= 0.999,
                "{} on {} regressed: {:.3}x",
                p.app,
                p.chip,
                p.speedup
            );
            assert!(p.nodes_after <= p.nodes_before);
            // Sim latency stays inside the cost model's serial ceiling.
            assert!(p.opt_ms <= p.opt_cost_ms * 1.001);
        }
        // Mean fleet gain grows as the pipeline matures (Lesson 2's
        // "performance follows the compiler, not the binary").
        assert!(gains[0].speedups.mean < gains[1].speedups.mean);
        assert!(gains[1].speedups.mean < gains[2].speedups.mean);
        // CMEM placement only exists on v4i, and the v4i pipeline
        // recovers it for the reshaped weights on every app (the
        // BERT-class apps overflow the 128 MiB CMEM, so their fraction
        // is partial rather than ~100%).
        for p in &points {
            if p.chip == "TPUv4i" {
                assert!(p.cmem_fraction > 0.1, "{}: {}", p.app, p.cmem_fraction);
            } else {
                assert_eq!(p.cmem_fraction, 0.0, "{} on {}", p.app, p.chip);
            }
        }
    }

    #[test]
    fn e26_renders_deterministically() {
        let a = e26_compiler();
        let b = e26_compiler();
        assert_eq!(a, b);
        assert!(a.contains("TPUv4i"));
        assert!(a.contains("speedup"));
    }
}
