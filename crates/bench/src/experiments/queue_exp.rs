//! E28: calendar-queue vs reference-heap DES engines — bit-identical
//! reports across the serving model zoo.
//!
//! The PR-10 event-core rewrite (calendar/bucket queue, request arena,
//! same-timestamp batch dispatch) is only admissible because every
//! downstream layer — parallel seed lanes, the derived-only telemetry
//! contract, the golden byte-pins — rests on bit-exact determinism.
//! This experiment runs representative fleet, chaos, generation, and
//! planet-scale configurations through both engines and reports the
//! headline numbers alongside the equivalence verdict. Everything
//! printed is a pure function of config and seed (no wall-clock), so
//! the output is byte-stable across hosts, thread counts, and runs —
//! CI diffs it between `--jobs 1` and `--jobs 4`.
//!
//! Performance itself is graded elsewhere (`micro --check-against
//! BENCH_serving.json`); the experiment's job is the *semantics* half
//! of the queue swap: same (time, seq) pop order in, same bytes out.

use tpu_serving::des::{
    simulate_fleet_with_faults, simulate_fleet_with_faults_reference, simulate_generation,
    simulate_generation_calendar, simulate_generation_reference, BatchingMode, FleetConfig,
    FleetPolicy, RetryPolicy, ServingConfig,
};
use tpu_serving::faults::{FailoverConfig, FaultPlan, MtbfFaults};
use tpu_serving::fleet::{
    simulate_global, simulate_global_reference, AutoscalerConfig, Cell, CellFault, CellFaultKind,
    GeoPolicy, GlobalConfig, TrafficModel,
};
use tpu_serving::latency::LatencyModel;

use crate::util::{f, Table};

/// One engine-equivalence arm.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePoint {
    /// Configuration label.
    pub name: &'static str,
    /// DES events processed (identical across engines by construction).
    pub events: u64,
    /// Requests offered.
    pub arrivals: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests lost (shed + failed + lb-shed, whichever the layer has).
    pub lost: usize,
    /// Headline p99, milliseconds.
    pub p99_ms: f64,
    /// Whether the calendar-queue report equals the reference-heap
    /// report field-for-field (bit-exact floats included).
    pub identical: bool,
}

/// Requests per arm: large enough to exercise shedding, failover, and
/// KV-pressure paths, small enough that E28 stays cheap in the full
/// experiments run.
pub const REQUESTS: usize = 6000;

fn latency() -> LatencyModel {
    LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid model")
}

fn expiry_fleet() -> FleetConfig {
    let base = ServingConfig {
        arrival_rate_rps: 16_000.0,
        max_batch: 32,
        batch_timeout_s: 0.002,
        requests: REQUESTS,
        seed: 1,
    };
    FleetConfig::new(base.with_servers(1)).with_policy(FleetPolicy {
        deadline_s: Some(0.05),
        shed_expired: true,
        queue_budget_s: Some(0.04),
        queue_cap: None,
        retry: RetryPolicy::default(),
    })
}

fn chaos_fleet() -> (FleetConfig, FaultPlan) {
    let base = ServingConfig {
        arrival_rate_rps: 12_000.0,
        max_batch: 16,
        batch_timeout_s: 0.001,
        requests: REQUESTS,
        seed: 1,
    };
    let fleet = FleetConfig::new(base.with_servers(4)).with_policy(FleetPolicy {
        deadline_s: Some(0.02),
        shed_expired: true,
        queue_budget_s: Some(0.015),
        queue_cap: Some(256),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_s: 0.002,
            backoff_mult: 2.0,
        },
    });
    let plan = FaultPlan {
        scheduled: Vec::new(),
        mtbf: Some(MtbfFaults {
            mtbf_s: 0.3,
            mttr_s: 0.05,
            horizon_s: 0.6,
        }),
        fault_seed: 7,
        failover: FailoverConfig {
            enabled: true,
            probe_interval_s: 0.002,
            probe_timeout_s: 0.001,
            recovery_warmup_s: 0.005,
        },
    };
    (fleet, plan)
}

fn global_fleet() -> GlobalConfig {
    let base = ServingConfig {
        arrival_rate_rps: 1.0,
        max_batch: 16,
        batch_timeout_s: 0.002,
        requests: 1,
        seed: 0,
    };
    let template = FleetConfig::new(base.with_servers(3)).with_policy(FleetPolicy {
        deadline_s: Some(0.05),
        shed_expired: true,
        queue_budget_s: Some(0.04),
        queue_cap: Some(256),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_s: 0.002,
            backoff_mult: 2.0,
        },
    });
    GlobalConfig {
        cells: (0..3).map(|_| Cell::new(template, 2500.0, 6)).collect(),
        traffic: TrafficModel::diurnal(8_000.0, 0.35, 0.8).with_flash(0.3, 0.15, 1.8),
        cell_faults: vec![CellFault {
            cell: 0,
            at_s: 0.3,
            duration_s: 0.25,
            kind: CellFaultKind::Outage,
        }],
        autoscaler: AutoscalerConfig::default(),
        geo: GeoPolicy {
            redirect_latency_s: 0.01,
            ..GeoPolicy::default()
        },
        epoch_s: 0.1,
        horizon_s: 0.8,
        seed: 1,
    }
}

/// E28 data: each arm run on both engines, compared field-for-field.
pub fn queue_data() -> Vec<QueuePoint> {
    let model = latency();
    let mut points = Vec::new();

    let fleet = expiry_fleet();
    let none = FaultPlan::none();
    let cal = simulate_fleet_with_faults(&model, &fleet, &none).expect("valid config");
    let heap = simulate_fleet_with_faults_reference(&model, &fleet, &none).expect("valid config");
    points.push(QueuePoint {
        name: "fleet-expiry",
        events: cal.metrics.events_processed.get(),
        arrivals: cal.arrivals,
        completed: cal.completed,
        lost: cal.shed + cal.failed,
        p99_ms: cal.p99_s * 1e3,
        identical: cal == heap,
    });

    let (fleet, plan) = chaos_fleet();
    let cal = simulate_fleet_with_faults(&model, &fleet, &plan).expect("valid config");
    let heap = simulate_fleet_with_faults_reference(&model, &fleet, &plan).expect("valid config");
    points.push(QueuePoint {
        name: "fleet-chaos",
        events: cal.metrics.events_processed.get(),
        arrivals: cal.arrivals,
        completed: cal.completed,
        lost: cal.shed + cal.failed,
        p99_ms: cal.p99_s * 1e3,
        identical: cal == heap,
    });

    let setup = super::generation::v4i_generation_setup();
    let mut gen_cfg = setup.base;
    gen_cfg.mode = BatchingMode::Continuous;
    gen_cfg.requests = 2000;
    gen_cfg.arrival_rate_rps = 1.8 * setup.capacity_rps;
    let prod = simulate_generation(&setup.lat, &gen_cfg).expect("valid config");
    let cal = simulate_generation_calendar(&setup.lat, &gen_cfg).expect("valid config");
    let heap = simulate_generation_reference(&setup.lat, &gen_cfg).expect("valid config");
    points.push(QueuePoint {
        name: "gen-continuous",
        events: prod.metrics.events_processed.get(),
        arrivals: prod.arrivals,
        completed: prod.completed,
        lost: prod.arrivals - prod.completed,
        p99_ms: prod.p99_ttft_s * 1e3,
        identical: prod == cal && cal == heap,
    });

    let cfg = global_fleet();
    let cal = simulate_global(&model, &cfg).expect("valid config");
    let heap = simulate_global_reference(&model, &cfg).expect("valid config");
    points.push(QueuePoint {
        name: "global-fleet",
        events: cal.metrics.events_processed.get(),
        arrivals: cal.arrivals as usize,
        completed: cal.completed as usize,
        lost: (cal.shed + cal.failed) as usize,
        p99_ms: cal.p99_s * 1e3,
        identical: cal == heap,
    });

    points
}

/// E28 (extension) — calendar-queue engine vs reference heap:
/// bit-identical reports across the serving model zoo.
pub fn e28_queue() -> String {
    let mut t = Table::new(&[
        "config",
        "events",
        "arrivals",
        "completed",
        "lost",
        "p99 ms",
        "reports",
    ]);
    for p in queue_data() {
        t.row(vec![
            p.name.to_owned(),
            p.events.to_string(),
            p.arrivals.to_string(),
            p.completed.to_string(),
            p.lost.to_string(),
            f(p.p99_ms, 3),
            if p.identical {
                "bit-identical".to_owned()
            } else {
                "DIVERGED".to_owned()
            },
        ]);
    }
    format!(
        "E28 (extension) — calendar-queue vs reference-heap DES engines: same (time, seq) pop \
         order, same bytes out ({REQUESTS} requests per fleet arm; perf graded separately by \
         micro --check-against)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e28_every_arm_is_bit_identical() {
        let data = queue_data();
        assert_eq!(data.len(), 4);
        for p in &data {
            assert!(p.identical, "{} diverged between engines", p.name);
            assert!(p.events > 0 && p.arrivals > 0);
        }
    }
}
