//! The experiment harness: every table and figure of the paper's
//! evaluation, regenerated (experiments E1–E14; see DESIGN.md's index).
//!
//! Each experiment exposes a `*_data()` function returning structured
//! results (used by integration tests to assert the paper's *shapes*)
//! and a `run()`/formatting path that renders the table the
//! `experiments` binary prints. EXPERIMENTS.md records paper-vs-measured
//! for each.
//!
//! ```no_run
//! // Print one experiment:
//! let out = tpu_bench::run_experiment("e5").unwrap();
//! println!("{out}");
//! ```

pub mod experiments;
pub mod multiseed;
pub mod quick;
pub mod util;

/// Runs one experiment by id (`"e1"`..`"e14"`), returning its rendered
/// output, or `None` for an unknown id.
pub fn run_experiment(id: &str) -> Option<String> {
    let out = match id.to_ascii_lowercase().as_str() {
        "e1" => experiments::tables::e1_table1(),
        "e2" => experiments::tables::e2_tech_scaling(),
        "e3" => experiments::tables::e3_app_table(),
        "e4" => experiments::perf::e4_roofline(),
        "e5" => experiments::perf::e5_perf_per_watt(),
        "e6" => experiments::perf::e6_cmem_sweep(),
        "e7" => experiments::perf::e7_compiler_gains(),
        "e8" => experiments::serving_exp::e8_latency_vs_batch(),
        "e9" => experiments::numerics_exp::e9_int8_vs_bf16(),
        "e10" => experiments::cost_exp::e10_tco(),
        "e11" => experiments::serving_exp::e11_multitenancy(),
        "e12" => experiments::cost_exp::e12_growth(),
        "e13" => experiments::cost_exp::e13_cooling(),
        "e14" => experiments::numerics_exp::e14_backwards_compat(),
        "e15" => experiments::scaleout::e15_scaleout(),
        "e16" => experiments::perf::e16_energy_breakdown(),
        "e17" => experiments::serving_exp::e17_batching_policies(),
        "e18" => experiments::cost_exp::e18_fleet_sizing(),
        "e19" => experiments::evolution::e19_workload_evolution(),
        "e20" => experiments::serving_exp::e20_interference(),
        "e21" => experiments::overload::e21_overload(),
        "e22" => experiments::chaos::e22_chaos(),
        "e24" => experiments::observability::e24_observability(),
        "e25" => experiments::generation::e25_generation(),
        "e26" => experiments::compiler_exp::e26_compiler(),
        "e27" => experiments::fleet_exp::e27_fleet(),
        "e28" => experiments::queue_exp::e28_queue(),
        "a1" => experiments::ablations::a1_mxu_count(),
        "a2" => experiments::ablations::a2_hbm_bandwidth(),
        "a3" => experiments::ablations::a3_clock(),
        "a4" => experiments::cost_exp::a4_electricity(),
        _ => return None,
    };
    Some(out)
}

/// All experiment ids in order (E15-E25 are extensions: ICI scale-out,
/// energy breakdown, batching policies, fleet sizing, workload
/// evolution, co-location interference, overload goodput, chaos /
/// failover, observability, continuous batching).
pub const ALL_EXPERIMENTS: [&str; 27] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "e24", "e25", "e26", "e27", "e28",
];

/// The fast deterministic subset the golden-regression test pins
/// (`--quick`): analytic tables, the recorded-lifecycle experiment, the
/// decode-loop sweep, and the compiler-pipeline replay, skipping the
/// long DES sweeps so the snapshot run stays cheap even in debug
/// builds.
pub const QUICK_EXPERIMENTS: [&str; 13] = [
    "e1", "e2", "e3", "e4", "e5", "e9", "e10", "e13", "e14", "e24", "e25", "e26", "e27",
];

/// The design-choice ablations (run with explicit ids or `--ablations`).
pub const ALL_ABLATIONS: [&str; 4] = ["a1", "a2", "a3", "a4"];
