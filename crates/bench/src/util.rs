//! Small formatting and math helpers shared by the experiments.

/// Geometric mean of positive values (0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// A simple fixed-width text table builder.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (cells are arbitrary strings).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(widths.len()) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-friendly precision.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
