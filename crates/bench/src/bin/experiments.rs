//! Prints the paper's tables and figures, regenerated.
//!
//! Usage:
//!
//! ```text
//! experiments            # run everything (E1..E14)
//! experiments e5 e6      # run a subset
//! experiments --list     # list experiment ids
//! experiments --ablations  # also run the design-choice ablations A1-A3
//! experiments --quick    # the fast deterministic subset (golden tests)
//! experiments --jobs 4   # run experiments on 4 worker threads
//! ```
//!
//! With `--jobs N` the experiments run concurrently but the outputs are
//! buffered and printed in id order, so the output is byte-identical to
//! a sequential run (`--jobs 1`, the default).

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = env::args().skip(1).collect();
    let mut jobs: usize = 1;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            let Some(n) = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) else {
                eprintln!("--jobs needs a positive integer");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            let Some(n) = v.parse().ok().filter(|&n| n > 0) else {
                eprintln!("--jobs needs a positive integer");
                return ExitCode::FAILURE;
            };
            jobs = n;
        } else {
            args.push(a);
        }
    }
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for id in tpu_bench::ALL_EXPERIMENTS
            .iter()
            .chain(tpu_bench::ALL_ABLATIONS.iter())
        {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let with_ablations = args.iter().any(|a| a == "--ablations");
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = {
        let positional: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        if quick {
            tpu_bench::QUICK_EXPERIMENTS
                .iter()
                .map(|s| (*s).to_owned())
                .collect()
        } else if positional.is_empty() {
            tpu_bench::ALL_EXPERIMENTS
                .iter()
                .chain(if with_ablations {
                    tpu_bench::ALL_ABLATIONS.iter()
                } else {
                    [].iter()
                })
                .map(|s| (*s).to_owned())
                .collect()
        } else {
            positional
        }
    };
    let outputs: Vec<Option<String>> = if jobs <= 1 {
        ids.iter().map(|id| tpu_bench::run_experiment(id)).collect()
    } else {
        tpu_par::par_map_with(jobs, &ids, |id| tpu_bench::run_experiment(id))
    };
    for (id, out) in ids.iter().zip(outputs) {
        match out {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
