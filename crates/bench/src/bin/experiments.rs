//! Prints the paper's tables and figures, regenerated.
//!
//! Usage:
//!
//! ```text
//! experiments            # run everything (E1..E14)
//! experiments e5 e6      # run a subset
//! experiments --list     # list experiment ids
//! experiments --ablations  # also run the design-choice ablations A1-A3
//! ```

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for id in tpu_bench::ALL_EXPERIMENTS
            .iter()
            .chain(tpu_bench::ALL_ABLATIONS.iter())
        {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let with_ablations = args.iter().any(|a| a == "--ablations");
    let ids: Vec<String> = {
        let positional: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        if positional.is_empty() {
            tpu_bench::ALL_EXPERIMENTS
                .iter()
                .chain(if with_ablations {
                    tpu_bench::ALL_ABLATIONS.iter()
                } else {
                    [].iter()
                })
                .map(|s| (*s).to_owned())
                .collect()
        } else {
            positional
        }
    };
    for id in &ids {
        match tpu_bench::run_experiment(id) {
            Some(out) => {
                println!("{out}");
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
