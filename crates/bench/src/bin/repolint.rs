//! `repolint`: textual repo-invariant lint, wired into CI.
//!
//! Conventions that keep the simulators deterministic and the serving
//! engine panic-free are easy to erode one commit at a time; this lint
//! makes them mechanical:
//!
//! 1. **`thread::spawn` only inside `tpu-par`.** All parallelism goes
//!    through the scoped pool so `--jobs N` stays byte-deterministic.
//! 2. **No wall-clock reads in simulator crates** (`tpu-sim`,
//!    `tpu-serving`, `tpu-isa`): `Instant::now` / `SystemTime` in model
//!    code makes runs unreproducible. Profiling call-sites that
//!    genuinely need a clock carry an inline waiver.
//! 3. **No `.unwrap()` in non-test engine code** of `tpu-serving` and
//!    `tpu-sim`: the serving path returns typed errors; a panic in the
//!    decode loop is an outage, not a bug report.
//!
//! A line ending in a `repolint:allow` comment is exempt (use
//! sparingly; say why on the same line). Test modules (`#[cfg(test)]`,
//! tracked by brace depth), `tests/`, `benches/` and `examples/` trees
//! are exempt from rule 3 and rule 2.
//!
//! Exit status: 0 when clean, 1 with one line per violation otherwise.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Which invariant a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    ThreadSpawn,
    WallClock,
    Unwrap,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::ThreadSpawn => "thread-spawn-outside-tpu-par",
            Rule::WallClock => "wall-clock-in-simulator",
            Rule::Unwrap => "unwrap-in-engine-code",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: Rule,
    text: String,
}

/// The patterns, assembled so this file does not flag itself.
const SPAWN_PATTERN: &str = concat!("thread::", "spawn");
const INSTANT_PATTERN: &str = concat!("Instant::", "now");
const SYSTEMTIME_PATTERN: &str = concat!("System", "Time");
const UNWRAP_PATTERN: &str = concat!(".unwrap", "()");

/// Crates whose model code must be wall-clock-free.
const SIM_CRATES: [&str; 3] = ["sim", "serving", "isa"];

/// Crates whose non-test code must be unwrap-free.
const ENGINE_CRATES: [&str; 2] = ["serving", "sim"];

fn main() -> ExitCode {
    // crates/bench/Cargo.toml -> workspace root, so the lint works from
    // any working directory.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root")
        .to_path_buf();
    let crates_dir = root.join("crates");

    let mut files = Vec::new();
    collect_rust_files(&crates_dir, &mut files);
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let Ok(source) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        violations.extend(lint_file(rel, &source));
    }

    if violations.is_empty() {
        println!("repolint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!(
                "{}:{}: [{}] {}",
                v.file.display(),
                v.line,
                v.rule,
                v.text.trim()
            );
        }
        println!("repolint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The crate a repo-relative path belongs to (`crates/<name>/...`).
fn crate_of(rel: &Path) -> Option<&str> {
    let mut parts = rel.components();
    let first = parts.next()?.as_os_str().to_str()?;
    if first != "crates" {
        return None;
    }
    parts.next()?.as_os_str().to_str()
}

/// Whether the path is library source (vs tests/, benches/, examples/).
fn is_library_source(rel: &Path) -> bool {
    !rel.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples")
        )
    })
}

fn lint_file(rel: &Path, source: &str) -> Vec<Violation> {
    let Some(krate) = crate_of(rel) else {
        return Vec::new();
    };
    let lib_source = is_library_source(rel);
    let spawn_applies = krate != "par";
    let clock_applies = lib_source && SIM_CRATES.contains(&krate);
    let unwrap_applies = lib_source && ENGINE_CRATES.contains(&krate);

    let mut out = Vec::new();
    let mut test_tracker = TestRegionTracker::default();
    for (i, line) in source.lines().enumerate() {
        let in_test = test_tracker.observe(line);
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || line.contains("repolint:allow") {
            continue;
        }
        let mut hit = |rule: Rule| {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule,
                text: line.to_owned(),
            });
        };
        if spawn_applies && line.contains(SPAWN_PATTERN) {
            hit(Rule::ThreadSpawn);
        }
        if clock_applies
            && !in_test
            && (line.contains(INSTANT_PATTERN) || line.contains(SYSTEMTIME_PATTERN))
        {
            hit(Rule::WallClock);
        }
        if unwrap_applies && !in_test && line.contains(UNWRAP_PATTERN) {
            hit(Rule::Unwrap);
        }
    }
    out
}

/// Tracks `#[cfg(test)]` regions by brace depth. Naive about braces in
/// string literals, which is fine for gating: test modules sit at the
/// end of files in this repo, so an unbalanced string can only extend,
/// never shrink, the exempt region.
#[derive(Default)]
struct TestRegionTracker {
    pending: bool,
    in_region: bool,
    depth: i64,
}

impl TestRegionTracker {
    /// Feeds one line; returns whether it belongs to a test region.
    fn observe(&mut self, line: &str) -> bool {
        if self.in_region {
            self.depth += brace_delta(line);
            if self.depth <= 0 {
                self.in_region = false;
            }
            return true;
        }
        if self.pending {
            let delta = brace_delta(line);
            if delta > 0 {
                self.pending = false;
                self.in_region = true;
                self.depth = delta;
            }
            return true;
        }
        if line.trim_start().starts_with("#[cfg(test)]") {
            self.pending = true;
            return true;
        }
        false
    }
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0i64;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_is_flagged_outside_par_only() {
        let src = "fn go() { std::thread::spawn(|| {}); }\n"; // repolint:allow fixture
        let v = lint_file(Path::new("crates/sim/src/lib.rs"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ThreadSpawn);
        assert!(lint_file(Path::new("crates/par/src/lib.rs"), src).is_empty());
    }

    #[test]
    fn wall_clock_rules_scope_to_sim_crates() {
        let src = "fn t() -> Instant { Instant::now() }\n";
        assert_eq!(
            lint_file(Path::new("crates/serving/src/des.rs"), src).len(),
            1
        );
        // Non-simulator crates may read the clock (the bench harness
        // times real work).
        assert!(lint_file(Path::new("crates/bench/src/lib.rs"), src).is_empty());
        // Integration tests of simulator crates may too.
        assert!(lint_file(Path::new("crates/sim/tests/t.rs"), src).is_empty());
    }

    #[test]
    fn unwrap_is_flagged_only_outside_test_modules() {
        let src = "\
fn f() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn g() { y.unwrap(); }
}
";
        let v = lint_file(Path::new("crates/sim/src/engine.rs"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, Rule::Unwrap);
    }

    #[test]
    fn comments_and_waivers_are_exempt() {
        let src = "\
//! let x = plan.unwrap();
// Instant::now in a comment
fn f() { let t = Instant::now(); } // repolint:allow profiler path
";
        assert!(lint_file(Path::new("crates/sim/src/engine.rs"), src).is_empty());
    }

    #[test]
    fn nested_braces_close_the_test_region() {
        let src = "\
#[cfg(test)]
mod tests {
    fn g() { if a { b.unwrap(); } }
}
fn live() { c.unwrap(); }
";
        let v = lint_file(Path::new("crates/serving/src/des.rs"), src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }
}
