//! A deliberately naive frontend: re-emits a graph the way a sloppy
//! model exporter would.
//!
//! Real serving binaries rarely receive the clean graphs [`zoo`]
//! (crate::zoo) builds. Checkpoint converters flatten weights to 1-D
//! buffers and reshape them back at the use site, defensive exporters
//! re-apply activations "just in case", and abandoned branches of the
//! model linger in the proto. [`deoptimize`] reproduces exactly those
//! artifacts — **without changing the math** — so experiments can
//! measure what the optimizing pass pipeline is worth on realistic
//! input (E26) and differential tests can check `optimize ∘ deoptimize
//! ≡ identity`.

use tpu_hlo::{Graph, HloOp, OpId, ShapeError};
use tpu_numerics::activation::Activation;

/// Re-emits `graph` with frontend artifacts injected:
///
/// - every constant is stored flattened and reshaped back at its use
///   site (hides weights from the CMEM planner until constant folding
///   recovers them);
/// - every ReLU is applied twice (sound: ReLU is idempotent);
/// - a dead weight + activation branch is appended (squats on CMEM
///   budget until DCE collects it);
/// - the first output takes a flatten/unflatten reshape round trip.
///
/// The result computes the same outputs as the input — parameters keep
/// their ordinals and constants keep their linear-index contents, so
/// the deterministic evaluator sees identical values — but it lowers
/// much worse until the pass pipeline has cleaned it up.
///
/// # Errors
///
/// Propagates [`ShapeError`]s; none occur for well-formed inputs.
pub fn deoptimize(graph: &Graph) -> Result<Graph, ShapeError> {
    let mut out = Graph::new(graph.name(), graph.dtype());
    let mut remap: Vec<OpId> = Vec::with_capacity(graph.nodes().len());
    for node in graph.nodes() {
        let m = |id: OpId| remap[id.index()];
        let new_id = match node.op {
            HloOp::Parameter => out.parameter(node.shape.dims())?,
            HloOp::Constant => {
                let flat = out.constant(&[node.shape.elements()])?;
                out.reshape(flat, node.shape.dims())?
            }
            HloOp::Dot { lhs, rhs } => out.dot(m(lhs), m(rhs))?,
            HloOp::Conv2d {
                input,
                kernel,
                stride,
            } => out.conv2d(m(input), m(kernel), stride)?,
            HloOp::Activate { input, act } => {
                let once = out.activate(m(input), act)?;
                if act == Activation::Relu {
                    out.activate(once, Activation::Relu)?
                } else {
                    once
                }
            }
            HloOp::Binary { a, b, kind } => out.binary(m(a), m(b), kind)?,
            HloOp::Softmax { input } => out.softmax(m(input))?,
            HloOp::LayerNorm { input } => out.layer_norm(m(input))?,
            HloOp::Embedding { table, batch, seq } => out.embedding(m(table), batch, seq)?,
            HloOp::MaxPool2d { input, window } => out.max_pool2d(m(input), window)?,
            HloOp::Reshape { input } => out.reshape(m(input), node.shape.dims())?,
            HloOp::GateReduce { input, factor } => out.gate_reduce(m(input), factor)?,
            HloOp::BatchMatmul {
                a,
                b,
                batch,
                m: rows,
                k,
                n,
            } => out.batch_matmul(m(a), m(b), batch, rows, k, n)?,
        };
        remap.push(new_id);
    }

    // The abandoned branch: a weight nobody reads, half-processed.
    let dead_w = out.constant(&[128, 128])?;
    out.activate(dead_w, Activation::Tanh)?;

    for (i, &o) in graph.outputs().iter().enumerate() {
        let mut mapped = remap[o.index()];
        if i == 0 {
            let dims = graph.node(o).shape.dims().to_vec();
            let flat = out.reshape(mapped, &[graph.node(o).shape.elements()])?;
            mapped = out.reshape(flat, &dims)?;
        }
        out.mark_output(mapped);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use tpu_hlo::eval;

    #[test]
    fn deoptimize_preserves_zoo_semantics() {
        // Cheap apps at batch 1: full elementwise differential check.
        for app in [zoo::mlp0(), zoo::mlp1(), zoo::rnn0(), zoo::rnn1()] {
            let clean = app.build(1).unwrap();
            let dirty = deoptimize(&clean).unwrap();
            assert!(
                dirty.nodes().len() > clean.nodes().len(),
                "{}",
                app.spec.name
            );
            let a = eval::evaluate(&clean).unwrap();
            let b = eval::evaluate(&dirty).unwrap();
            assert!(
                eval::outputs_divergence(&a, &b, 0.0).is_none(),
                "{} diverged after deoptimize",
                app.spec.name
            );
        }
    }

    #[test]
    fn deoptimize_verifies_for_every_app() {
        let v = tpu_hlo::Verifier::new();
        for app in zoo::production_apps() {
            let dirty = deoptimize(&app.build(2).unwrap()).unwrap();
            v.verify_graph(&dirty).unwrap();
        }
    }

    #[test]
    fn deoptimize_hides_weights_and_adds_dead_code() {
        let clean = zoo::mlp0().build(4).unwrap();
        let dirty = deoptimize(&clean).unwrap();
        // All weights now sit behind reshapes...
        let direct_consts_used: usize = dirty
            .nodes()
            .iter()
            .filter(|n| n.op.is_matrix_op())
            .flat_map(|n| n.op.operands())
            .filter(|&o| matches!(dirty.node(o).op, HloOp::Constant))
            .count();
        assert_eq!(direct_consts_used, 0);
        // ...and the dead branch inflates weight bytes.
        assert!(dirty.weight_bytes() > clean.weight_bytes());
        // Flops grew only by VPU noise (duplicate relus), not MXU work.
        let matrix = |g: &Graph| -> u64 {
            g.nodes()
                .iter()
                .filter(|n| n.op.is_matrix_op())
                .map(|n| g.node_flops(n))
                .sum()
        };
        assert_eq!(matrix(&clean), matrix(&dirty));
    }
}
