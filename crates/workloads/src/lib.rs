//! The model zoo: Google's production inference apps as HLO graphs.
//!
//! The paper (like the TPUv1 paper before it) evaluates on the DNNs that
//! actually dominate Google's inference fleet: two multi-layer
//! perceptrons, two convolutional networks, two recurrent networks and
//! two BERT-class transformers — together ~90%+ of inference load.
//! Google's production models are proprietary, so this crate builds
//! **stand-ins** with matched layer structure, parameter counts and
//! operational intensity (see DESIGN.md's substitution table); the
//! experiments depend only on those properties.
//!
//! [`zoo`] defines the eight apps and their serving metadata (p99 SLO,
//! int8 servability, fleet share); [`growth`] implements Lesson 8's
//! "DNNs grow 1.5x per year" demand model.
//!
//! # Example
//!
//! ```
//! use tpu_workloads::zoo;
//!
//! let apps = zoo::production_apps();
//! assert_eq!(apps.len(), 8);
//! let bert = zoo::bert0().build(4).unwrap();
//! assert!(bert.weight_count() > 50_000_000);
//! ```

pub mod frontend;
pub mod growth;
pub mod zoo;

pub use zoo::{production_apps, App, AppClass, AppSpec};
