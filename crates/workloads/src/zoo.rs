//! The eight production inference apps and their serving metadata.

use std::fmt;

use tpu_hlo::{Graph, ShapeError};
use tpu_numerics::activation::Activation;
use tpu_numerics::DType;

/// Model family of a production app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppClass {
    /// Multi-layer perceptron (ranking, recommendation).
    Mlp,
    /// Convolutional network (vision, game playing).
    Cnn,
    /// Recurrent network (translation, speech).
    Rnn,
    /// Transformer encoder (language understanding).
    Bert,
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppClass::Mlp => "MLP",
            AppClass::Cnn => "CNN",
            AppClass::Rnn => "RNN",
            AppClass::Bert => "BERT",
        };
        f.write_str(s)
    }
}

/// Serving metadata of one production app (the paper's app-table row).
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Short name, e.g. `"MLP0"`.
    pub name: &'static str,
    /// Model family.
    pub class: AppClass,
    /// The p99 latency SLO the app serves under, milliseconds
    /// (Lesson 10: apps limit latency, not batch size).
    pub slo_p99_ms: f64,
    /// Dominant nonlinearity.
    pub nonlinearity: &'static str,
    /// Whether production quality survives int8 quantization (Lesson 6:
    /// some inference apps require floating point).
    pub int8_servable: bool,
    /// Approximate share of fleet inference load (the mix table).
    pub fleet_share: f64,
    /// Year the app class entered production (Lesson 9: workloads
    /// evolve — BERT did not exist when TPUv1/v2 were designed).
    pub since_year: u32,
    /// One-line description of the stand-in.
    pub description: &'static str,
}

/// One app: metadata plus a graph builder parameterized by batch size.
#[derive(Clone)]
pub struct App {
    /// Serving metadata.
    pub spec: AppSpec,
    builder: fn(u64, DType) -> Result<Graph, ShapeError>,
}

impl fmt::Debug for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("App").field("spec", &self.spec).finish()
    }
}

impl App {
    /// Builds the app's HLO graph at a batch size, in bf16.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (none for positive batch sizes).
    pub fn build(&self, batch: u64) -> Result<Graph, ShapeError> {
        (self.builder)(batch.max(1), DType::Bf16)
    }

    /// Builds the graph at a batch size and precision (int8 for E9).
    ///
    /// # Errors
    ///
    /// Propagates shape errors (none for positive batch sizes).
    pub fn build_with(&self, batch: u64, dtype: DType) -> Result<Graph, ShapeError> {
        (self.builder)(batch.max(1), dtype)
    }
}

/// MLP0: a large ranking MLP (RankBrain-class stand-in).
pub fn mlp0() -> App {
    App {
        spec: AppSpec {
            name: "MLP0",
            class: AppClass::Mlp,
            slo_p99_ms: 7.0,
            nonlinearity: "relu",
            int8_servable: true,
            fleet_share: 0.18,
            since_year: 2014,
            description: "5-layer 2048-wide ranking MLP, ~17M params",
        },
        builder: |b, dt| {
            let mut g = Graph::new("MLP0", dt);
            let mut x = g.parameter(&[b, 2048])?;
            for _ in 0..4 {
                let w = g.constant(&[2048, 2048])?;
                x = g.dot(x, w)?;
                x = g.relu(x)?;
            }
            let w_out = g.constant(&[2048, 256])?;
            let y = g.dot(x, w_out)?;
            g.mark_output(y);
            Ok(g)
        },
    }
}

/// MLP1: a smaller recommendation MLP with an embedding front end.
pub fn mlp1() -> App {
    App {
        spec: AppSpec {
            name: "MLP1",
            class: AppClass::Mlp,
            slo_p99_ms: 20.0,
            nonlinearity: "relu",
            int8_servable: true,
            fleet_share: 0.07,
            since_year: 2015,
            description: "embedding + 3-layer 1024-wide MLP, ~14M params",
        },
        builder: |b, dt| {
            let mut g = Graph::new("MLP1", dt);
            let table = g.constant(&[100_000, 64])?; // sparse features
            let e = g.embedding(table, b, 16)?;
            let mut x = g.reshape(e, &[b, 16 * 64])?;
            let w_in = g.constant(&[16 * 64, 1024])?;
            x = g.dot(x, w_in)?;
            x = g.relu(x)?;
            for _ in 0..3 {
                let w = g.constant(&[1024, 1024])?;
                x = g.dot(x, w)?;
                x = g.relu(x)?;
            }
            let w_out = g.constant(&[1024, 128])?;
            let y = g.dot(x, w_out)?;
            g.mark_output(y);
            Ok(g)
        },
    }
}

/// CNN0: a deep board-game-style residual CNN (AlphaZero-class
/// stand-in) — the compute-bound, high-intensity app.
pub fn cnn0() -> App {
    App {
        spec: AppSpec {
            name: "CNN0",
            class: AppClass::Cnn,
            slo_p99_ms: 10.0,
            nonlinearity: "relu",
            int8_servable: true,
            fleet_share: 0.04,
            since_year: 2016,
            description: "10x (3x3, 128ch) residual tower on 19x19, ~2.5M params",
        },
        builder: |b, dt| {
            let mut g = Graph::new("CNN0", dt);
            let mut x = g.parameter(&[b, 19, 19, 128])?;
            for _ in 0..10 {
                let k = g.constant(&[3, 3, 128, 128])?;
                let c = g.conv2d(x, k, 1)?;
                x = g.relu(c)?;
            }
            let head = g.constant(&[1, 1, 128, 8])?;
            let h = g.conv2d(x, head, 1)?;
            let h = g.relu(h)?;
            let flat = g.reshape(h, &[b, 19 * 19 * 8])?;
            let w_fc = g.constant(&[19 * 19 * 8, 362])?;
            let y = g.dot(flat, w_fc)?;
            g.mark_output(y);
            Ok(g)
        },
    }
}

/// CNN1: an image-classification CNN (reduced-ResNet stand-in).
pub fn cnn1() -> App {
    App {
        spec: AppSpec {
            name: "CNN1",
            class: AppClass::Cnn,
            slo_p99_ms: 32.0,
            nonlinearity: "relu",
            int8_servable: true,
            fleet_share: 0.06,
            since_year: 2015,
            description: "5-stage strided 3x3 CNN, 64->512ch, ~3.3M params",
        },
        builder: |b, dt| {
            let mut g = Graph::new("CNN1", dt);
            let mut x = g.parameter(&[b, 56, 56, 64])?;
            let stages: [(u64, u64, u64); 5] = [
                (64, 128, 2),
                (128, 128, 1),
                (128, 256, 2),
                (256, 256, 1),
                (256, 512, 2),
            ];
            for (cin, cout, stride) in stages {
                let k = g.constant(&[3, 3, cin, cout])?;
                let c = g.conv2d(x, k, stride)?;
                x = g.relu(c)?;
            }
            let p = g.max_pool2d(x, 7)?; // -> [b, 1, 1, 512]
            let flat = g.reshape(p, &[b, 512])?;
            let w_fc = g.constant(&[512, 1000])?;
            let y = g.dot(flat, w_fc)?;
            g.mark_output(y);
            Ok(g)
        },
    }
}

/// Builds an unrolled LSTM graph.
fn lstm(
    name: &'static str,
    dt: DType,
    batch: u64,
    input: u64,
    hidden: u64,
    layers: u64,
    seq: u64,
) -> Result<Graph, ShapeError> {
    let mut g = Graph::new(name, dt);
    // Per-layer weights, shared across time steps.
    let mut w_x = Vec::new();
    let mut w_h = Vec::new();
    for l in 0..layers {
        let in_dim = if l == 0 { input } else { hidden };
        w_x.push(g.constant(&[in_dim, 4 * hidden])?);
        w_h.push(g.constant(&[hidden, 4 * hidden])?);
    }
    // Initial hidden states come in as parameters.
    let mut h: Vec<_> = (0..layers)
        .map(|_| g.parameter(&[batch, hidden]))
        .collect::<Result<_, _>>()?;
    let mut last = None;
    for _t in 0..seq {
        let mut x = g.parameter(&[batch, input])?;
        for l in 0..layers as usize {
            let xw = g.dot(x, w_x[l])?;
            let hu = g.dot(h[l], w_h[l])?;
            let s = g.add(xw, hu)?;
            let gates = g.activate(s, Activation::Sigmoid)?;
            let h_new = g.gate_reduce(gates, 4)?;
            h[l] = h_new;
            x = h_new;
        }
        last = Some(x);
    }
    g.mark_output(last.expect("seq >= 1"));
    Ok(g)
}

/// RNN0: a large translation LSTM (GNMT-class stand-in) — the app whose
/// quality does *not* survive int8 (Lesson 6).
pub fn rnn0() -> App {
    App {
        spec: AppSpec {
            name: "RNN0",
            class: AppClass::Rnn,
            slo_p99_ms: 60.0,
            nonlinearity: "sigmoid/tanh",
            int8_servable: false,
            fleet_share: 0.24,
            since_year: 2015,
            description: "4-layer 1024-hidden LSTM unrolled 16 steps, ~33M params",
        },
        builder: |b, dt| lstm("RNN0", dt, b, 1024, 1024, 4, 16),
    }
}

/// RNN1: a smaller speech LSTM.
pub fn rnn1() -> App {
    App {
        spec: AppSpec {
            name: "RNN1",
            class: AppClass::Rnn,
            slo_p99_ms: 10.0,
            nonlinearity: "sigmoid/tanh",
            int8_servable: true,
            fleet_share: 0.12,
            since_year: 2016,
            description: "2-layer 512-hidden LSTM unrolled 32 steps, ~4M params",
        },
        builder: |b, dt| lstm("RNN1", dt, b, 512, 512, 2, 32),
    }
}

/// Hyperparameters of a BERT-style encoder (used by the single-chip
/// builders and the pipeline-parallel stage builders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Encoder layers.
    pub layers: u64,
    /// Hidden width.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward width.
    pub ff: u64,
    /// Sequence length.
    pub seq: u64,
    /// Vocabulary size (embedding table rows).
    pub vocab: u64,
}

/// BERT0's hyperparameters (base-size encoder).
pub const BERT0_CONFIG: BertConfig = BertConfig {
    layers: 12,
    hidden: 768,
    heads: 12,
    ff: 3072,
    seq: 128,
    vocab: 30_000,
};

/// BERT1's hyperparameters (large encoder).
pub const BERT1_CONFIG: BertConfig = BertConfig {
    layers: 24,
    hidden: 1024,
    heads: 16,
    ff: 4096,
    seq: 128,
    vocab: 30_000,
};

/// Builds one span of encoder layers as a standalone graph.
///
/// `with_embedding` prepends the token-embedding front end (stage 0 of
/// a pipeline); otherwise the stage takes a `[batch, seq, hidden]`
/// activation parameter (arriving over ICI from the previous stage).
fn bert_layer_span(
    name: &str,
    dt: DType,
    batch: u64,
    cfg: &BertConfig,
    span_layers: u64,
    with_embedding: bool,
) -> Result<Graph, ShapeError> {
    let mut g = Graph::new(name, dt);
    let (hidden, heads, ff, seq) = (cfg.hidden, cfg.heads, cfg.ff, cfg.seq);
    let d_head = hidden / heads;
    let mut x = if with_embedding {
        let table = g.constant(&[cfg.vocab, hidden])?;
        let e = g.embedding(table, batch, seq)?;
        g.reshape(e, &[batch, seq, hidden])?
    } else {
        g.parameter(&[batch, seq, hidden])?
    };
    for _ in 0..span_layers {
        let wq = g.constant(&[hidden, hidden])?;
        let wk = g.constant(&[hidden, hidden])?;
        let wv = g.constant(&[hidden, hidden])?;
        let q = g.dot(x, wq)?;
        let k = g.dot(x, wk)?;
        let v = g.dot(x, wv)?;
        let scores = g.batch_matmul(q, k, batch * heads, seq, d_head, seq)?;
        let probs = g.softmax(scores)?;
        let ctx = g.batch_matmul(probs, v, batch * heads, seq, seq, d_head)?;
        let ctx = g.reshape(ctx, &[batch, seq, hidden])?;
        let wo = g.constant(&[hidden, hidden])?;
        let proj = g.dot(ctx, wo)?;
        let res1 = g.add(proj, x)?;
        let ln1 = g.layer_norm(res1)?;
        let w1 = g.constant(&[hidden, ff])?;
        let a = g.dot(ln1, w1)?;
        let a = g.gelu(a)?;
        let w2 = g.constant(&[ff, hidden])?;
        let o = g.dot(a, w2)?;
        let res2 = g.add(o, ln1)?;
        x = g.layer_norm(res2)?;
    }
    g.mark_output(x);
    Ok(g)
}

/// Builds the whole encoder as one graph.
fn bert(name: &str, dt: DType, batch: u64, cfg: &BertConfig) -> Result<Graph, ShapeError> {
    bert_layer_span(name, dt, batch, cfg, cfg.layers, true)
}

/// Splits a BERT encoder into `stages` pipeline stages (one graph per
/// chip), balancing layers across stages; stage 0 carries the embedding
/// front end. Used by the multi-chip scale-out experiment (E15).
///
/// # Errors
///
/// Propagates shape errors (none for positive batch and stages).
pub fn bert_pipeline(
    cfg: &BertConfig,
    batch: u64,
    dt: DType,
    stages: u64,
) -> Result<Vec<Graph>, ShapeError> {
    let stages = stages.clamp(1, cfg.layers);
    let base = cfg.layers / stages;
    let extra = cfg.layers % stages;
    (0..stages)
        .map(|s| {
            let span = base + u64::from(s < extra);
            bert_layer_span(&format!("bert-stage{s}"), dt, batch, cfg, span, s == 0)
        })
        .collect()
}

/// Bytes crossing ICI between two pipeline stages: one `[batch, seq,
/// hidden]` activation tensor at the serving precision.
pub fn bert_stage_activation_bytes(cfg: &BertConfig, batch: u64, dt: DType) -> u64 {
    batch * cfg.seq * cfg.hidden * dt.size_bytes()
}

/// BERT0: a base-size transformer encoder (12 layers, 768 hidden).
pub fn bert0() -> App {
    App {
        spec: AppSpec {
            name: "BERT0",
            class: AppClass::Bert,
            slo_p99_ms: 10.0,
            nonlinearity: "gelu/softmax",
            int8_servable: false,
            fleet_share: 0.20,
            since_year: 2019,
            description: "12-layer 768-hidden encoder, seq 128, ~108M params",
        },
        builder: |b, dt| bert("BERT0", dt, b, &BERT0_CONFIG),
    }
}

/// BERT1: a large transformer encoder (24 layers, 1024 hidden).
pub fn bert1() -> App {
    App {
        spec: AppSpec {
            name: "BERT1",
            class: AppClass::Bert,
            slo_p99_ms: 20.0,
            nonlinearity: "gelu/softmax",
            int8_servable: false,
            fleet_share: 0.09,
            since_year: 2019,
            description: "24-layer 1024-hidden encoder, seq 128, ~330M params",
        },
        builder: |b, dt| bert("BERT1", dt, b, &BERT1_CONFIG),
    }
}

/// The eight production apps, in the paper's table order.
pub fn production_apps() -> Vec<App> {
    vec![
        mlp0(),
        mlp1(),
        cnn0(),
        cnn1(),
        rnn0(),
        rnn1(),
        bert0(),
        bert1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_at_several_batches() {
        for app in production_apps() {
            for batch in [1, 4, 16] {
                let g = app.build(batch).unwrap();
                g.validate().unwrap();
                assert!(g.flops() > 0, "{}", app.spec.name);
                assert!(g.weight_count() > 0, "{}", app.spec.name);
            }
        }
    }

    #[test]
    fn parameter_counts_match_descriptions() {
        let check = |app: App, lo: f64, hi: f64| {
            let m = app.build(1).unwrap().weight_count() as f64 / 1e6;
            assert!(
                (lo..hi).contains(&m),
                "{}: {m:.1}M params outside [{lo}, {hi}]",
                app.spec.name
            );
        };
        check(mlp0(), 15.0, 20.0);
        check(mlp1(), 10.0, 18.0);
        check(cnn0(), 1.5, 3.5);
        check(cnn1(), 2.0, 5.0);
        check(rnn0(), 30.0, 40.0);
        check(rnn1(), 3.0, 6.0);
        check(bert0(), 90.0, 130.0);
        check(bert1(), 280.0, 380.0);
    }

    #[test]
    fn fleet_shares_sum_to_one() {
        let total: f64 = production_apps().iter().map(|a| a.spec.fleet_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        for app in production_apps() {
            let f1 = app.build(1).unwrap().flops() as f64;
            let f8 = app.build(8).unwrap().flops() as f64;
            let ratio = f8 / f1;
            assert!(
                (6.0..10.0).contains(&ratio),
                "{}: flops ratio {ratio:.2} not ~8",
                app.spec.name
            );
        }
    }

    #[test]
    fn cnn0_is_the_high_intensity_app() {
        // CNN0's intensity should dwarf the MLPs' (the roofline story).
        let cnn = cnn0().build(8).unwrap().intensity_estimate();
        let mlp = mlp0().build(8).unwrap().intensity_estimate();
        assert!(
            cnn > 10.0 * mlp,
            "cnn0 intensity {cnn:.1} should dwarf mlp0's {mlp:.1}"
        );
    }

    #[test]
    fn some_apps_require_floating_point() {
        let apps = production_apps();
        let fp_only: Vec<&str> = apps
            .iter()
            .filter(|a| !a.spec.int8_servable)
            .map(|a| a.spec.name)
            .collect();
        assert!(fp_only.contains(&"RNN0"));
        assert!(fp_only.contains(&"BERT0"));
        // And a substantial share of the fleet is FP-only (Lesson 6).
        let fp_share: f64 = apps
            .iter()
            .filter(|a| !a.spec.int8_servable)
            .map(|a| a.spec.fleet_share)
            .sum();
        assert!(fp_share > 0.25, "fp-only share {fp_share}");
    }

    #[test]
    fn int8_halves_weight_bytes() {
        let app = mlp0();
        let bf16 = app.build(1).unwrap().weight_bytes();
        let int8 = app.build_with(1, DType::Int8).unwrap().weight_bytes();
        assert_eq!(bf16, 2 * int8);
    }

    #[test]
    fn slos_are_single_digit_to_tens_of_ms() {
        for app in production_apps() {
            let slo = app.spec.slo_p99_ms;
            assert!((1.0..=100.0).contains(&slo), "{}", app.spec.name);
        }
    }

    #[test]
    fn bert_weights_exceed_v4i_cmem() {
        // The interesting CMEM case: BERT0 does not fully fit in 128 MiB.
        let bytes = bert0().build(1).unwrap().weight_bytes();
        assert!(bytes > 128 << 20, "{bytes}");
        // But MLP0 does.
        assert!(mlp0().build(1).unwrap().weight_bytes() < 128 << 20);
    }

    #[test]
    fn app_debug_shows_spec() {
        let s = format!("{:?}", mlp0());
        assert!(s.contains("MLP0"));
        assert_eq!(format!("{}", AppClass::Bert), "BERT");
    }
}
