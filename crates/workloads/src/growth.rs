//! Lesson 8: production DNNs grow ~1.5x per year.
//!
//! The paper's argument: between designing a DSA and deploying it,
//! models grow ~1.5x/year in both memory footprint and compute, so a
//! chip must provide headroom at design time or be obsolete at launch.
//! Experiment E12 regenerates the demand-vs-capability series from this
//! module.

use tpu_arch::{catalog, ChipConfig};
use tpu_hlo::{Graph, ShapeError};
use tpu_numerics::DType;

use crate::zoo::{self, BertConfig};

/// Annual multiplicative growth of model memory and compute.
pub const ANNUAL_GROWTH: f64 = 1.5;

/// Demand multiplier after `years` of growth.
pub fn demand_multiplier(years: f64) -> f64 {
    ANNUAL_GROWTH.powf(years)
}

/// One point of the demand-vs-capability series (E12).
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthPoint {
    /// Calendar year.
    pub year: u32,
    /// Projected model footprint, GiB.
    pub model_gib: f64,
    /// Projected model compute per inference, GFLOP.
    pub model_gflop: f64,
    /// Newest deployed TPU that year.
    pub chip: String,
    /// That chip's HBM capacity, GiB.
    pub chip_hbm_gib: f64,
    /// That chip's peak throughput, TFLOPS (fastest native type).
    pub chip_tflops: f64,
}

/// The newest TPU generation deployed by `year` (TPUv1 before 2017).
pub fn newest_chip_in(year: u32) -> ChipConfig {
    let mut best = catalog::tpu_v1();
    for chip in catalog::tpu_generations() {
        if chip.year <= year && chip.year >= best.year {
            best = chip;
        }
    }
    best
}

/// Builds the demand-vs-capability series from `start` to `end`
/// (inclusive), seeding model demand at `base_gib` / `base_gflop` in
/// `start`.
pub fn demand_vs_capability(
    base_gib: f64,
    base_gflop: f64,
    start: u32,
    end: u32,
) -> Vec<GrowthPoint> {
    (start..=end)
        .map(|year| {
            let m = demand_multiplier((year - start) as f64);
            let chip = newest_chip_in(year);
            let dtype = chip.fastest_type();
            GrowthPoint {
                year,
                model_gib: base_gib * m,
                model_gflop: base_gflop * m,
                chip_hbm_gib: chip.hbm.capacity_gib(),
                chip_tflops: chip.peak_flops(dtype).unwrap_or(0.0) / 1e12,
                chip: chip.name,
            }
        })
        .collect()
}

/// Years of headroom a chip's HBM provides for a model of `model_gib`
/// growing at the standard rate (can be negative: already too small).
pub fn hbm_headroom_years(chip: &ChipConfig, model_gib: f64) -> f64 {
    let capacity = chip.hbm.capacity_gib();
    (capacity / model_gib).ln() / ANNUAL_GROWTH.ln()
}

/// Whether a model of `bytes` at `dtype` fits a chip's HBM after
/// `years` of growth.
pub fn fits_after_growth(chip: &ChipConfig, bytes: u64, dtype: DType, years: f64) -> bool {
    let _ = dtype; // footprint already at dtype; kept for call-site clarity
    (bytes as f64) * demand_multiplier(years) <= chip.hbm.capacity_bytes as f64
}

/// Rounds a dimension up to a multiple of the 128-wide MXU tile.
fn round_dim(d: f64) -> u64 {
    ((d / 128.0).ceil() as u64).max(1) * 128
}

/// MLP0's descendant after `years` of 1.5x/yr growth: layer widths scale
/// by `sqrt(1.5^years)` so the parameter count scales by ~`1.5^years`.
///
/// # Errors
///
/// Propagates shape errors (none for sane years).
pub fn mlp0_grown(batch: u64, years: f64) -> Result<Graph, ShapeError> {
    let width = round_dim(2048.0 * demand_multiplier(years).sqrt());
    let mut g = Graph::new("MLP0-grown", DType::Bf16);
    let mut x = g.parameter(&[batch.max(1), width])?;
    for _ in 0..4 {
        let w = g.constant(&[width, width])?;
        x = g.dot(x, w)?;
        x = g.relu(x)?;
    }
    let w_out = g.constant(&[width, 256])?;
    let y = g.dot(x, w_out)?;
    g.mark_output(y);
    Ok(g)
}

/// BERT0's descendant after `years` of growth (hidden and FF widths
/// scale by `sqrt(1.5^years)`; depth and sequence stay fixed).
///
/// # Errors
///
/// Propagates shape errors (none for sane years).
pub fn bert0_grown(batch: u64, years: f64) -> Result<Graph, ShapeError> {
    let s = demand_multiplier(years).sqrt();
    let base = zoo::BERT0_CONFIG;
    let hidden = round_dim(base.hidden as f64 * s);
    let cfg = BertConfig {
        layers: base.layers,
        hidden,
        // Keep 64-wide heads so the head count always divides hidden.
        heads: hidden / 64,
        ff: round_dim(base.ff as f64 * s),
        seq: base.seq,
        vocab: base.vocab,
    };
    let stages = zoo::bert_pipeline(&cfg, batch.max(1), DType::Bf16, 1)?;
    Ok(stages.into_iter().next().expect("one stage"))
}

/// The first whole year at which a grown model no longer fits a memory
/// budget (`None` within `horizon` years).
pub fn outgrows_in_years<F>(mut weight_bytes_at: F, budget_bytes: u64, horizon: u32) -> Option<u32>
where
    F: FnMut(f64) -> u64,
{
    (0..=horizon).find(|&y| weight_bytes_at(y as f64) > budget_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;

    #[test]
    fn multiplier_compounds() {
        assert_eq!(demand_multiplier(0.0), 1.0);
        assert!((demand_multiplier(1.0) - 1.5).abs() < 1e-12);
        assert!((demand_multiplier(2.0) - 2.25).abs() < 1e-12);
        // Doubling time just under 2 years.
        assert!(demand_multiplier(2.0) > 2.0);
    }

    #[test]
    fn newest_chip_progression() {
        assert_eq!(newest_chip_in(2015).name, "TPUv1");
        assert_eq!(newest_chip_in(2016).name, "TPUv1");
        assert_eq!(newest_chip_in(2017).name, "TPUv2");
        assert_eq!(newest_chip_in(2019).name, "TPUv3");
        // 2020 ships both v4i and v4; either is acceptable, both are 2020.
        assert_eq!(newest_chip_in(2021).year, 2020);
    }

    #[test]
    fn series_spans_years_and_grows() {
        let s = demand_vs_capability(1.0, 10.0, 2016, 2020);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].year, 2016);
        assert!((s[0].model_gib - 1.0).abs() < 1e-12);
        assert!(s[4].model_gib > 5.0); // 1.5^4 ≈ 5.06
        for pair in s.windows(2) {
            assert!(pair[1].model_gib > pair[0].model_gib);
            assert!(pair[1].model_gflop > pair[0].model_gflop);
        }
    }

    #[test]
    fn demand_outgrows_hbm_lesson_eight() {
        // A 2 GiB 2016 model outgrows TPUv4i's 8 GiB HBM by 2020 —
        // 2*1.5^4 = 10.1 GiB — the headroom squeeze the paper warns of.
        let s = demand_vs_capability(2.0, 50.0, 2016, 2020);
        let last = s.last().unwrap();
        assert!(last.model_gib > 8.0);
    }

    #[test]
    fn headroom_math() {
        let v4i = catalog::tpu_v4i();
        // 1 GiB model in 8 GiB HBM: log1.5(8) ≈ 5.1 years.
        let y = hbm_headroom_years(&v4i, 1.0);
        assert!((4.9..5.3).contains(&y), "{y}");
        // Model bigger than HBM: negative headroom.
        assert!(hbm_headroom_years(&v4i, 16.0) < 0.0);
    }

    #[test]
    fn grown_models_track_the_growth_rate() {
        let base = mlp0_grown(1, 0.0).unwrap().weight_count() as f64;
        let grown = mlp0_grown(1, 4.0).unwrap().weight_count() as f64;
        // 1.5^4 = 5.06; dimension rounding adds slack.
        let ratio = grown / base;
        assert!((4.0..6.5).contains(&ratio), "mlp ratio {ratio}");
        let b0 = bert0_grown(1, 0.0).unwrap().weight_count() as f64;
        let b4 = bert0_grown(1, 4.0).unwrap().weight_count() as f64;
        let bratio = b4 / b0;
        assert!((3.5..7.0).contains(&bratio), "bert ratio {bratio}");
    }

    #[test]
    fn bert0_outgrows_v4i_cmem_quickly_and_hbm_eventually() {
        let v4i = catalog::tpu_v4i();
        let cmem = v4i.cmem.unwrap().capacity_bytes;
        let hbm = v4i.hbm.capacity_bytes;
        let bytes_at = |y: f64| bert0_grown(1, y).unwrap().weight_bytes();
        // BERT0 already exceeds 128 MiB CMEM at year 0.
        assert_eq!(outgrows_in_years(bytes_at, cmem, 12), Some(0));
        // And outgrows the 8 GiB HBM within the chip's service life era.
        let hbm_year = outgrows_in_years(|y| bert0_grown(1, y).unwrap().weight_bytes(), hbm, 12);
        assert!(hbm_year.is_some());
        assert!((6..=10).contains(&hbm_year.unwrap()), "{hbm_year:?}");
    }

    #[test]
    fn fits_after_growth_checks() {
        let v4i = catalog::tpu_v4i();
        let one_gib = 1u64 << 30;
        assert!(fits_after_growth(&v4i, one_gib, DType::Bf16, 3.0));
        assert!(!fits_after_growth(&v4i, one_gib, DType::Bf16, 6.0));
    }
}
