//! Property tests for the model zoo and growth model.

use proptest::prelude::*;
use tpu_workloads::{growth, production_apps};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Weight counts are batch-invariant; flops scale with batch.
    #[test]
    fn weights_are_batch_invariant(batch in 1u64..64, idx in 0usize..8) {
        let app = &production_apps()[idx];
        let g1 = app.build(1).unwrap();
        let gb = app.build(batch).unwrap();
        prop_assert_eq!(g1.weight_count(), gb.weight_count());
        prop_assert!(gb.flops() >= g1.flops());
        gb.validate().unwrap();
    }

    /// Growth compounds multiplicatively: m(a+b) = m(a) * m(b).
    #[test]
    fn growth_is_multiplicative(a in 0.0f64..5.0, b in 0.0f64..5.0) {
        let lhs = growth::demand_multiplier(a + b);
        let rhs = growth::demand_multiplier(a) * growth::demand_multiplier(b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs);
    }

    /// Grown models never shrink with years, and parameter growth stays
    /// within a factor-2 band of the ideal 1.5^y trajectory (dimension
    /// rounding and the non-scaled output layer cause slack).
    #[test]
    fn grown_models_bracket_the_trajectory(years in 0.0f64..8.0) {
        let base = growth::mlp0_grown(1, 0.0).unwrap().weight_count() as f64;
        let grown = growth::mlp0_grown(1, years).unwrap().weight_count() as f64;
        let ideal = growth::demand_multiplier(years);
        let ratio = grown / base;
        prop_assert!(ratio >= 0.5 * ideal, "ratio {ratio} vs ideal {ideal}");
        prop_assert!(ratio <= 2.0 * ideal, "ratio {ratio} vs ideal {ideal}");
    }

    /// The headroom formula inverts the growth model.
    #[test]
    fn headroom_inverts_growth(model_gib in 0.1f64..7.9) {
        let chip = tpu_arch::catalog::tpu_v4i();
        let years = growth::hbm_headroom_years(&chip, model_gib);
        let grown = model_gib * growth::demand_multiplier(years);
        prop_assert!((grown - chip.hbm.capacity_gib()).abs() < 1e-6);
    }
}
