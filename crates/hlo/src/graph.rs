//! The HLO graph IR: ops, nodes, builder with shape inference.

use std::fmt;

use tpu_numerics::activation::Activation;
use tpu_numerics::DType;

use crate::shape::{ShapeError, TensorShape};

/// Identifier of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Ids are only meaningful inside the graph they came from. Builder
    /// methods reject out-of-range operands with
    /// [`ShapeError::UnknownOperand`], and the
    /// [`Verifier`](crate::verify::Verifier) rejects dangling ids in
    /// hand-assembled graphs, so a fabricated id cannot corrupt a graph
    /// silently — this constructor exists for pass rewrites and for
    /// mutation tests that must build deliberately broken graphs.
    pub fn from_raw(index: u32) -> OpId {
        OpId(index)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Kinds of binary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryKind {
    /// Elementwise addition.
    Add,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise maximum.
    Max,
}

/// An HLO operation. Operand ids always refer to earlier nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum HloOp {
    /// A runtime input (activations).
    Parameter,
    /// A compile-time constant (weights); lives in HBM or CMEM.
    Constant,
    /// `lhs [b, k] @ rhs [k, n] -> [b, n]`. `rhs` is typically weights.
    Dot {
        /// Left operand (activations).
        lhs: OpId,
        /// Right operand (weights).
        rhs: OpId,
    },
    /// NHWC 2-D convolution with "same" padding.
    Conv2d {
        /// Input `[n, h, w, cin]`.
        input: OpId,
        /// Kernel `[kh, kw, cin, cout]`.
        kernel: OpId,
        /// Stride in both spatial dimensions.
        stride: u64,
    },
    /// Unary nonlinearity.
    Activate {
        /// Input.
        input: OpId,
        /// Which function.
        act: Activation,
    },
    /// Binary elementwise op (shapes must match).
    Binary {
        /// First operand.
        a: OpId,
        /// Second operand.
        b: OpId,
        /// Which op.
        kind: BinaryKind,
    },
    /// Softmax over the trailing dimension.
    Softmax {
        /// Input.
        input: OpId,
    },
    /// Layer normalization over the trailing dimension.
    LayerNorm {
        /// Input.
        input: OpId,
    },
    /// Embedding lookup: `ids [b, s]` into `table [vocab, dim]` giving
    /// `[b, s, dim]`.
    Embedding {
        /// The embedding table (a `Constant`).
        table: OpId,
        /// Batch of sequences.
        batch: u64,
        /// Ids per sequence.
        seq: u64,
    },
    /// Max pooling over `[n, h, w, c]` with square window and stride.
    MaxPool2d {
        /// Input.
        input: OpId,
        /// Window edge length (also the stride).
        window: u64,
    },
    /// Element-count-preserving reshape.
    Reshape {
        /// Input.
        input: OpId,
    },
    /// Elementwise combination of `factor` interleaved gates:
    /// `[.., n] -> [.., n/factor]` (LSTM cell math: `i*c~ + f*c`, output
    /// gating). Pure VPU work.
    GateReduce {
        /// Input (trailing dim divisible by `factor`).
        input: OpId,
        /// Gate count combined into one output element.
        factor: u64,
    },
    /// Batched matmul of two *activation* tensors (attention's `QK^T`
    /// and `AV`): `a` is `[batch, m, k]`, `b` is `[batch, k, n]`, both
    /// live in VMEM — no weight streaming.
    BatchMatmul {
        /// Left operand.
        a: OpId,
        /// Right operand.
        b: OpId,
        /// Batch count.
        batch: u64,
        /// Rows per batch.
        m: u64,
        /// Contraction size.
        k: u64,
        /// Columns per batch.
        n: u64,
    },
}

impl HloOp {
    /// Operand ids of this op.
    pub fn operands(&self) -> Vec<OpId> {
        match *self {
            HloOp::Parameter | HloOp::Constant => Vec::new(),
            HloOp::Dot { lhs, rhs } => vec![lhs, rhs],
            HloOp::Conv2d { input, kernel, .. } => vec![input, kernel],
            HloOp::Activate { input, .. }
            | HloOp::Softmax { input }
            | HloOp::LayerNorm { input }
            | HloOp::MaxPool2d { input, .. }
            | HloOp::Reshape { input }
            | HloOp::GateReduce { input, .. } => vec![input],
            HloOp::Binary { a, b, .. } | HloOp::BatchMatmul { a, b, .. } => vec![a, b],
            HloOp::Embedding { table, .. } => vec![table],
        }
    }

    /// Short mnemonic for display and step tags.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            HloOp::Parameter => "param",
            HloOp::Constant => "const",
            HloOp::Dot { .. } => "dot",
            HloOp::Conv2d { .. } => "conv2d",
            HloOp::Activate { .. } => "act",
            HloOp::Binary { .. } => "binary",
            HloOp::Softmax { .. } => "softmax",
            HloOp::LayerNorm { .. } => "layernorm",
            HloOp::Embedding { .. } => "embed",
            HloOp::MaxPool2d { .. } => "maxpool",
            HloOp::Reshape { .. } => "reshape",
            HloOp::GateReduce { .. } => "gates",
            HloOp::BatchMatmul { .. } => "bmm",
        }
    }

    /// Whether this is a pure elementwise/normalization op that can fuse
    /// into a matmul/conv producer.
    pub fn is_fusible_consumer(&self) -> bool {
        matches!(
            self,
            HloOp::Activate { .. }
                | HloOp::Binary { .. }
                | HloOp::Softmax { .. }
                | HloOp::LayerNorm { .. }
                | HloOp::GateReduce { .. }
        )
    }

    /// Whether this op runs on the MXU (vs VPU/DMA).
    pub fn is_matrix_op(&self) -> bool {
        matches!(
            self,
            HloOp::Dot { .. } | HloOp::Conv2d { .. } | HloOp::BatchMatmul { .. }
        )
    }
}

/// A node: an op plus its inferred output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// This node's id.
    pub id: OpId,
    /// The operation.
    pub op: HloOp,
    /// Inferred output shape.
    pub shape: TensorShape,
}

/// An HLO computation graph in SSA form (ids are topologically ordered).
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    dtype: DType,
    nodes: Vec<Node>,
    outputs: Vec<OpId>,
}

impl Graph {
    /// Creates an empty graph computing in `dtype`.
    pub fn new(name: &str, dtype: DType) -> Graph {
        Graph {
            name: name.to_owned(),
            dtype,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compute precision of the graph.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Returns a copy of this graph computing in a different precision
    /// (the int8-vs-bf16 experiment re-compiles the same topology).
    pub fn with_dtype(&self, dtype: DType) -> Graph {
        let mut g = self.clone();
        g.dtype = dtype;
        g
    }

    /// The nodes in topological (id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The designated outputs.
    pub fn outputs(&self) -> &[OpId] {
        &self.outputs
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this graph.
    pub fn node(&self, id: OpId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a node, returning `None` for a dangling id.
    pub fn get(&self, id: OpId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Looks up an operand, rejecting dangling ids with a typed error.
    fn operand(&self, id: OpId, context: &'static str) -> Result<&Node, ShapeError> {
        self.nodes
            .get(id.index())
            .ok_or(ShapeError::UnknownOperand {
                context,
                index: id.index(),
                nodes: self.nodes.len(),
            })
    }

    /// Marks a node as a graph output.
    pub fn mark_output(&mut self, id: OpId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Assembles a graph directly from nodes and outputs, with no
    /// checking whatsoever.
    ///
    /// This is the escape hatch the pass framework rewrites through and
    /// mutation tests corrupt through; anything built this way must pass
    /// [`Verifier::verify_graph`](crate::verify::Verifier::verify_graph)
    /// before it reaches lowering — `compile` runs it unconditionally.
    pub fn from_parts(name: &str, dtype: DType, nodes: Vec<Node>, outputs: Vec<OpId>) -> Graph {
        Graph {
            name: name.to_owned(),
            dtype,
            nodes,
            outputs,
        }
    }

    /// Decomposes the graph into `(name, dtype, nodes, outputs)`,
    /// the inverse of [`Graph::from_parts`].
    pub fn into_parts(self) -> (String, DType, Vec<Node>, Vec<OpId>) {
        (self.name, self.dtype, self.nodes, self.outputs)
    }

    fn insert(&mut self, op: HloOp, shape: TensorShape) -> OpId {
        let id = OpId(self.nodes.len() as u32);
        self.nodes.push(Node { id, op, shape });
        id
    }

    /// Adds a runtime input of the given shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] for invalid shapes.
    pub fn parameter(&mut self, dims: &[u64]) -> Result<OpId, ShapeError> {
        let shape = TensorShape::new(dims)?;
        Ok(self.insert(HloOp::Parameter, shape))
    }

    /// Adds a weight tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] for invalid shapes.
    pub fn constant(&mut self, dims: &[u64]) -> Result<OpId, ShapeError> {
        let shape = TensorShape::new(dims)?;
        Ok(self.insert(HloOp::Constant, shape))
    }

    /// Adds `lhs @ rhs`. Accepts `[.., k] @ [k, n]`; leading dims of
    /// `lhs` are flattened into the row dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the contraction dims differ or `rhs`
    /// is not rank 2.
    pub fn dot(&mut self, lhs: OpId, rhs: OpId) -> Result<OpId, ShapeError> {
        let out = self.dot_shape(lhs, rhs)?;
        Ok(self.insert(HloOp::Dot { lhs, rhs }, out))
    }

    fn dot_shape(&self, lhs: OpId, rhs: OpId) -> Result<TensorShape, ShapeError> {
        let ls = self.operand(lhs, "dot lhs")?.shape.clone();
        let rs = self.operand(rhs, "dot rhs")?.shape.clone();
        if rs.rank() != 2 {
            return Err(ShapeError::BadRank {
                context: "dot rhs",
                found: rs.rank(),
                expected: 2,
            });
        }
        if ls.trailing() != rs.leading() {
            return Err(ShapeError::Mismatch {
                context: "dot contraction",
                lhs: ls,
                rhs: rs,
            });
        }
        let mut dims = ls.dims().to_vec();
        *dims.last_mut().expect("non-scalar") = rs.trailing();
        TensorShape::new(&dims)
    }

    /// Adds an NHWC conv with "same" padding.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on rank or channel mismatches.
    pub fn conv2d(&mut self, input: OpId, kernel: OpId, stride: u64) -> Result<OpId, ShapeError> {
        let stride = stride.max(1);
        let out = self.conv2d_shape(input, kernel, stride)?;
        Ok(self.insert(
            HloOp::Conv2d {
                input,
                kernel,
                stride,
            },
            out,
        ))
    }

    fn conv2d_shape(
        &self,
        input: OpId,
        kernel: OpId,
        stride: u64,
    ) -> Result<TensorShape, ShapeError> {
        let is = self.operand(input, "conv2d input")?.shape.clone();
        let ks = self.operand(kernel, "conv2d kernel")?.shape.clone();
        if is.rank() != 4 {
            return Err(ShapeError::BadRank {
                context: "conv2d input",
                found: is.rank(),
                expected: 4,
            });
        }
        if ks.rank() != 4 {
            return Err(ShapeError::BadRank {
                context: "conv2d kernel",
                found: ks.rank(),
                expected: 4,
            });
        }
        if is.dims()[3] != ks.dims()[2] {
            return Err(ShapeError::Mismatch {
                context: "conv2d channels",
                lhs: is,
                rhs: ks,
            });
        }
        let stride = stride.max(1);
        let (n, h, w) = (is.dims()[0], is.dims()[1], is.dims()[2]);
        let cout = ks.dims()[3];
        TensorShape::new(&[n, h.div_ceil(stride), w.div_ceil(stride), cout])
    }

    /// Adds a unary nonlinearity.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] for dangling operand ids.
    pub fn activate(&mut self, input: OpId, act: Activation) -> Result<OpId, ShapeError> {
        let shape = self.unary_shape(input, "activate input")?;
        Ok(self.insert(HloOp::Activate { input, act }, shape))
    }

    fn unary_shape(&self, input: OpId, context: &'static str) -> Result<TensorShape, ShapeError> {
        Ok(self.operand(input, context)?.shape.clone())
    }

    /// Shorthand for ReLU.
    pub fn relu(&mut self, input: OpId) -> Result<OpId, ShapeError> {
        self.activate(input, Activation::Relu)
    }

    /// Shorthand for GELU.
    pub fn gelu(&mut self, input: OpId) -> Result<OpId, ShapeError> {
        self.activate(input, Activation::Gelu)
    }

    /// Adds a binary elementwise op.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn binary(&mut self, a: OpId, b: OpId, kind: BinaryKind) -> Result<OpId, ShapeError> {
        let out = self.binary_shape(a, b)?;
        Ok(self.insert(HloOp::Binary { a, b, kind }, out))
    }

    fn binary_shape(&self, a: OpId, b: OpId) -> Result<TensorShape, ShapeError> {
        let sa = self.operand(a, "binary lhs")?.shape.clone();
        let sb = self.operand(b, "binary rhs")?.shape.clone();
        if sa != sb {
            return Err(ShapeError::Mismatch {
                context: "binary operands",
                lhs: sa,
                rhs: sb,
            });
        }
        Ok(sa)
    }

    /// Shorthand for elementwise add.
    pub fn add(&mut self, a: OpId, b: OpId) -> Result<OpId, ShapeError> {
        self.binary(a, b, BinaryKind::Add)
    }

    /// Shorthand for elementwise multiply.
    pub fn mul(&mut self, a: OpId, b: OpId) -> Result<OpId, ShapeError> {
        self.binary(a, b, BinaryKind::Mul)
    }

    /// Adds softmax over the trailing dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] for dangling operand ids.
    pub fn softmax(&mut self, input: OpId) -> Result<OpId, ShapeError> {
        let shape = self.unary_shape(input, "softmax input")?;
        Ok(self.insert(HloOp::Softmax { input }, shape))
    }

    /// Adds layer norm over the trailing dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] for dangling operand ids.
    pub fn layer_norm(&mut self, input: OpId) -> Result<OpId, ShapeError> {
        let shape = self.unary_shape(input, "layer_norm input")?;
        Ok(self.insert(HloOp::LayerNorm { input }, shape))
    }

    /// Adds an embedding lookup of `batch x seq` ids into `table`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the table is not rank 2 or counts are 0.
    pub fn embedding(&mut self, table: OpId, batch: u64, seq: u64) -> Result<OpId, ShapeError> {
        let out = self.embedding_shape(table, batch, seq)?;
        Ok(self.insert(HloOp::Embedding { table, batch, seq }, out))
    }

    fn embedding_shape(
        &self,
        table: OpId,
        batch: u64,
        seq: u64,
    ) -> Result<TensorShape, ShapeError> {
        let ts = self.operand(table, "embedding table")?.shape.clone();
        if ts.rank() != 2 {
            return Err(ShapeError::BadRank {
                context: "embedding table",
                found: ts.rank(),
                expected: 2,
            });
        }
        TensorShape::new(&[batch, seq, ts.trailing()])
    }

    /// Adds square max pooling.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if input is not rank 4.
    pub fn max_pool2d(&mut self, input: OpId, window: u64) -> Result<OpId, ShapeError> {
        let window = window.max(1);
        let out = self.max_pool2d_shape(input, window)?;
        Ok(self.insert(HloOp::MaxPool2d { input, window }, out))
    }

    fn max_pool2d_shape(&self, input: OpId, window: u64) -> Result<TensorShape, ShapeError> {
        let is = self.operand(input, "maxpool input")?.shape.clone();
        if is.rank() != 4 {
            return Err(ShapeError::BadRank {
                context: "maxpool input",
                found: is.rank(),
                expected: 4,
            });
        }
        let window = window.max(1);
        let (n, h, w, c) = (is.dims()[0], is.dims()[1], is.dims()[2], is.dims()[3]);
        TensorShape::new(&[n, h.div_ceil(window), w.div_ceil(window), c])
    }

    /// Combines `factor` interleaved gates elementwise, shrinking the
    /// trailing dimension (LSTM cell update).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `factor` divides the trailing dim.
    pub fn gate_reduce(&mut self, input: OpId, factor: u64) -> Result<OpId, ShapeError> {
        let factor = factor.max(1);
        let out = self.gate_reduce_shape(input, factor)?;
        Ok(self.insert(HloOp::GateReduce { input, factor }, out))
    }

    fn gate_reduce_shape(&self, input: OpId, factor: u64) -> Result<TensorShape, ShapeError> {
        let is = self.operand(input, "gate_reduce input")?.shape.clone();
        let factor = factor.max(1);
        if !is.trailing().is_multiple_of(factor) {
            return Err(ShapeError::Mismatch {
                context: "gate_reduce factor must divide trailing dim",
                lhs: is,
                rhs: TensorShape::new(&[factor])?,
            });
        }
        let mut dims = is.dims().to_vec();
        *dims.last_mut().expect("non-scalar") /= factor;
        TensorShape::new(&dims)
    }

    /// Adds a batched activation-by-activation matmul (`[batch, m, k] @
    /// [batch, k, n]`). Operands are checked by element count so
    /// reshaped views qualify.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if operand element counts do not match
    /// the requested dimensions.
    pub fn batch_matmul(
        &mut self,
        a: OpId,
        b: OpId,
        batch: u64,
        m: u64,
        k: u64,
        n: u64,
    ) -> Result<OpId, ShapeError> {
        let out = self.batch_matmul_shape(a, b, batch, m, k, n)?;
        Ok(self.insert(
            HloOp::BatchMatmul {
                a,
                b,
                batch,
                m,
                k,
                n,
            },
            out,
        ))
    }

    fn batch_matmul_shape(
        &self,
        a: OpId,
        b: OpId,
        batch: u64,
        m: u64,
        k: u64,
        n: u64,
    ) -> Result<TensorShape, ShapeError> {
        let sa = self.operand(a, "batch_matmul lhs")?.shape.clone();
        let sb = self.operand(b, "batch_matmul rhs")?.shape.clone();
        if sa.elements() != batch * m * k {
            return Err(ShapeError::Mismatch {
                context: "batch_matmul lhs elements",
                lhs: sa,
                rhs: TensorShape::new(&[batch, m, k])?,
            });
        }
        if sb.elements() != batch * k * n {
            return Err(ShapeError::Mismatch {
                context: "batch_matmul rhs elements",
                lhs: sb,
                rhs: TensorShape::new(&[batch, k, n])?,
            });
        }
        TensorShape::new(&[batch, m, n])
    }

    /// Adds a reshape to `dims` (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ElementCountChanged`] if counts differ.
    pub fn reshape(&mut self, input: OpId, dims: &[u64]) -> Result<OpId, ShapeError> {
        let from = self.operand(input, "reshape input")?.shape.elements();
        let out = TensorShape::new(dims)?;
        if out.elements() != from {
            return Err(ShapeError::ElementCountChanged {
                from,
                to: out.elements(),
            });
        }
        Ok(self.insert(HloOp::Reshape { input }, out))
    }

    /// Recomputes the output shape of `node` from its op and its
    /// operands' stored shapes, exactly as the builder methods would.
    ///
    /// `Parameter` and `Constant` shapes are declared rather than
    /// inferred, so their stored shape is returned as-is; a `Reshape`'s
    /// target dims likewise live only in the stored shape, so it is
    /// returned after re-checking element conservation. The
    /// [`Verifier`](crate::verify::Verifier) compares this against the
    /// stored shape to catch hand-assembled or pass-corrupted graphs.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when an operand id is dangling or the
    /// operands no longer satisfy the op's shape constraints.
    pub fn reinfer(&self, node: &Node) -> Result<TensorShape, ShapeError> {
        match node.op {
            HloOp::Parameter | HloOp::Constant => Ok(node.shape.clone()),
            HloOp::Dot { lhs, rhs } => self.dot_shape(lhs, rhs),
            HloOp::Conv2d {
                input,
                kernel,
                stride,
            } => self.conv2d_shape(input, kernel, stride),
            HloOp::Activate { input, .. } => self.unary_shape(input, "activate input"),
            HloOp::Softmax { input } => self.unary_shape(input, "softmax input"),
            HloOp::LayerNorm { input } => self.unary_shape(input, "layer_norm input"),
            HloOp::Binary { a, b, .. } => self.binary_shape(a, b),
            HloOp::Embedding { table, batch, seq } => self.embedding_shape(table, batch, seq),
            HloOp::MaxPool2d { input, window } => self.max_pool2d_shape(input, window),
            HloOp::GateReduce { input, factor } => self.gate_reduce_shape(input, factor),
            HloOp::BatchMatmul {
                a,
                b,
                batch,
                m,
                k,
                n,
            } => self.batch_matmul_shape(a, b, batch, m, k, n),
            HloOp::Reshape { input } => {
                let from = self.operand(input, "reshape input")?.shape.elements();
                let to = node.shape.elements();
                if to != from {
                    return Err(ShapeError::ElementCountChanged { from, to });
                }
                Ok(node.shape.clone())
            }
        }
    }

    /// Total weight bytes (all `Constant` nodes) at the graph's dtype.
    pub fn weight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Constant))
            .map(|n| n.shape.bytes(self.dtype))
            .sum()
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Constant))
            .map(|n| n.shape.elements())
            .sum()
    }

    /// MXU + VPU operations per execution of the graph.
    pub fn flops(&self) -> u64 {
        self.nodes.iter().map(|n| self.node_flops(n)).sum()
    }

    /// Operations attributable to one node.
    pub fn node_flops(&self, n: &Node) -> u64 {
        match n.op {
            HloOp::Dot { lhs, rhs } => {
                let k = self.node(rhs).shape.leading();
                let rows: u64 = self.node(lhs).shape.elements() / k;
                2 * rows * k * self.node(rhs).shape.trailing()
            }
            HloOp::Conv2d { kernel, .. } => {
                let ks = &self.node(kernel).shape;
                let (kh, kw, cin, _cout) = (ks.dims()[0], ks.dims()[1], ks.dims()[2], ks.dims()[3]);
                // Output positions x kernel volume x cout x 2.
                2 * n.shape.elements() / n.shape.dims()[3] * (kh * kw * cin) * n.shape.dims()[3]
            }
            HloOp::Activate { act, .. } => n.shape.elements() * act.vpu_ops_per_element().max(1),
            HloOp::Binary { .. } => n.shape.elements(),
            HloOp::Softmax { .. } | HloOp::LayerNorm { .. } => 8 * n.shape.elements(),
            HloOp::MaxPool2d { window, .. } => n.shape.elements() * window * window,
            HloOp::BatchMatmul { batch, m, k, n, .. } => 2 * batch * m * k * n,
            HloOp::GateReduce { factor, .. } => n.shape.elements() * factor,
            HloOp::Embedding { .. } | HloOp::Reshape { .. } => 0,
            HloOp::Parameter | HloOp::Constant => 0,
        }
    }

    /// Operational intensity estimate: flops over (weights + IO) bytes.
    pub fn intensity_estimate(&self) -> f64 {
        let io: u64 = self
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Parameter))
            .map(|n| n.shape.bytes(self.dtype))
            .sum::<u64>()
            + self
                .outputs
                .iter()
                .map(|&o| self.node(o).shape.bytes(self.dtype))
                .sum::<u64>();
        let bytes = self.weight_bytes() + io;
        if bytes == 0 {
            return 0.0;
        }
        self.flops() as f64 / bytes as f64
    }

    /// Consumers of each node (indexed by `OpId::index`).
    pub fn consumers(&self) -> Vec<Vec<OpId>> {
        let mut uses = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for operand in n.op.operands() {
                uses[operand.index()].push(n.id);
            }
        }
        uses
    }

    /// Validates internal consistency (operand ordering, outputs exist).
    ///
    /// Graphs built through the typed API are always valid; this guards
    /// hand-constructed or mutated graphs in tests.
    pub fn validate(&self) -> Result<(), ShapeError> {
        for n in &self.nodes {
            for operand in n.op.operands() {
                if operand.index() >= n.id.index() {
                    return Err(ShapeError::BadRank {
                        context: "operand must precede user",
                        found: operand.index(),
                        expected: n.id.index(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph `{}` ({}, {} nodes, {:.1}M params, {:.2} GFLOP)",
            self.name,
            self.dtype,
            self.nodes.len(),
            self.weight_count() as f64 / 1e6,
            self.flops() as f64 / 1e9,
        )?;
        for n in &self.nodes {
            write!(f, "  {} = {} {}", n.id, n.op.mnemonic(), n.shape)?;
            let ops = n.op.operands();
            if !ops.is_empty() {
                write!(f, " (")?;
                for (i, o) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp() -> Graph {
        let mut g = Graph::new("mlp", DType::Bf16);
        let x = g.parameter(&[8, 256]).unwrap();
        let w1 = g.constant(&[256, 512]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.constant(&[512, 10]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn dot_shape_inference() {
        let g = mlp();
        assert_eq!(g.node(OpId(2)).shape.dims(), &[8, 512]);
        assert_eq!(g.node(OpId(5)).shape.dims(), &[8, 10]);
        g.validate().unwrap();
    }

    #[test]
    fn dot_rejects_mismatch() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 256]).unwrap();
        let w = g.constant(&[300, 512]).unwrap();
        assert!(matches!(
            g.dot(x, w).unwrap_err(),
            ShapeError::Mismatch { .. }
        ));
        let w3 = g.constant(&[2, 3, 4]).unwrap();
        assert!(matches!(
            g.dot(x, w3).unwrap_err(),
            ShapeError::BadRank { .. }
        ));
    }

    #[test]
    fn dot_flattens_leading_dims() {
        // [b, s, k] @ [k, n] -> [b, s, n] (BERT-style).
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 128, 768]).unwrap();
        let w = g.constant(&[768, 3072]).unwrap();
        let y = g.dot(x, w).unwrap();
        assert_eq!(g.node(y).shape.dims(), &[4, 128, 3072]);
        assert_eq!(g.node_flops(g.node(y)), 2 * 4 * 128 * 768 * 3072);
    }

    #[test]
    fn conv_shape_and_flops() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[1, 56, 56, 64]).unwrap();
        let k = g.constant(&[3, 3, 64, 128]).unwrap();
        let y = g.conv2d(x, k, 1).unwrap();
        assert_eq!(g.node(y).shape.dims(), &[1, 56, 56, 128]);
        let expect = 2 * (56 * 56) * (3 * 3 * 64) * 128;
        assert_eq!(g.node_flops(g.node(y)), expect);
        // Strided halves spatial dims (same padding, ceil).
        let y2 = g.conv2d(x, k, 2).unwrap();
        assert_eq!(g.node(y2).shape.dims(), &[1, 28, 28, 128]);
    }

    #[test]
    fn conv_rejects_bad_ranks_and_channels() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[1, 56, 56, 64]).unwrap();
        let bad_k = g.constant(&[3, 3, 32, 128]).unwrap();
        assert!(matches!(
            g.conv2d(x, bad_k, 1).unwrap_err(),
            ShapeError::Mismatch { .. }
        ));
        let flat = g.parameter(&[8, 64]).unwrap();
        let k = g.constant(&[3, 3, 64, 128]).unwrap();
        assert!(matches!(
            g.conv2d(flat, k, 1).unwrap_err(),
            ShapeError::BadRank { .. }
        ));
    }

    #[test]
    fn weight_accounting() {
        let g = mlp();
        assert_eq!(g.weight_count(), 256 * 512 + 512 * 10);
        assert_eq!(g.weight_bytes(), 2 * (256 * 512 + 512 * 10));
        let int8 = g.with_dtype(DType::Int8);
        assert_eq!(int8.weight_bytes(), 256 * 512 + 512 * 10);
    }

    #[test]
    fn binary_requires_matching_shapes() {
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.parameter(&[4, 4]).unwrap();
        let b = g.parameter(&[4, 5]).unwrap();
        assert!(g.binary(a, b, BinaryKind::Add).is_err());
        let c = g.parameter(&[4, 4]).unwrap();
        assert!(g.add(a, c).is_ok());
    }

    #[test]
    fn embedding_and_pool_shapes() {
        let mut g = Graph::new("t", DType::Bf16);
        let table = g.constant(&[30000, 128]).unwrap();
        let e = g.embedding(table, 4, 64).unwrap();
        assert_eq!(g.node(e).shape.dims(), &[4, 64, 128]);
        assert_eq!(g.node_flops(g.node(e)), 0);

        let x = g.parameter(&[1, 28, 28, 32]).unwrap();
        let p = g.max_pool2d(x, 2).unwrap();
        assert_eq!(g.node(p).shape.dims(), &[1, 14, 14, 32]);
    }

    #[test]
    fn reshape_preserves_elements() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 64]).unwrap();
        assert!(g.reshape(x, &[256]).is_ok());
        assert!(matches!(
            g.reshape(x, &[4, 65]).unwrap_err(),
            ShapeError::ElementCountChanged { .. }
        ));
    }

    #[test]
    fn consumers_map() {
        let g = mlp();
        let uses = g.consumers();
        // x (id 0) is used by the first dot (id 2).
        assert_eq!(uses[0], vec![OpId(2)]);
        // relu output (id 3) used by second dot (id 5).
        assert_eq!(uses[3], vec![OpId(5)]);
        assert!(uses[5].is_empty());
    }

    #[test]
    fn fusible_classification() {
        let g = mlp();
        assert!(g.node(OpId(3)).op.is_fusible_consumer()); // relu
        assert!(!g.node(OpId(2)).op.is_fusible_consumer()); // dot
        assert!(g.node(OpId(2)).op.is_matrix_op());
    }

    #[test]
    fn intensity_estimate_is_finite_positive() {
        let g = mlp();
        let i = g.intensity_estimate();
        assert!(i > 0.0 && i.is_finite());
    }

    #[test]
    fn display_dumps_nodes() {
        let s = format!("{}", mlp());
        assert!(s.contains("dot"));
        assert!(s.contains("%0"));
        assert!(s.contains("params"));
    }

    #[test]
    fn builders_reject_dangling_operand_ids() {
        // An id minted by a *different* graph (or fabricated raw) used to
        // panic inside the builder; every builder now returns the typed
        // UnknownOperand error instead.
        let foreign = OpId::from_raw(99);
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 64]).unwrap();
        let img = g.parameter(&[1, 8, 8, 4]).unwrap();
        let dangling = |r: Result<OpId, ShapeError>| {
            assert!(matches!(r, Err(ShapeError::UnknownOperand { .. })), "{r:?}");
        };
        dangling(g.dot(foreign, x));
        dangling(g.dot(x, foreign));
        dangling(g.conv2d(foreign, img, 1));
        dangling(g.conv2d(img, foreign, 1));
        dangling(g.activate(foreign, Activation::Relu));
        dangling(g.binary(x, foreign, BinaryKind::Add));
        dangling(g.softmax(foreign));
        dangling(g.layer_norm(foreign));
        dangling(g.embedding(foreign, 2, 2));
        dangling(g.max_pool2d(foreign, 2));
        dangling(g.gate_reduce(foreign, 4));
        dangling(g.batch_matmul(foreign, x, 1, 4, 64, 1));
        dangling(g.reshape(foreign, &[256]));
        // The graph is untouched by the failed builder calls.
        assert_eq!(g.nodes().len(), 2);
        let msg = format!("{}", g.dot(foreign, x).unwrap_err());
        assert!(msg.contains("%99"), "{msg}");
    }

    #[test]
    fn get_is_total_where_node_panics() {
        let g = mlp();
        assert!(g.get(OpId::from_raw(0)).is_some());
        assert!(g.get(OpId::from_raw(1000)).is_none());
    }

    #[test]
    fn reinfer_matches_builder_shapes() {
        let g = mlp();
        for n in g.nodes() {
            assert_eq!(g.reinfer(n).unwrap(), n.shape, "{}", n.id);
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let g = mlp();
        let copy = g.clone();
        let (name, dtype, nodes, outputs) = g.into_parts();
        let back = Graph::from_parts(&name, dtype, nodes, outputs);
        assert_eq!(back, copy);
    }

    #[test]
    fn mark_output_deduplicates() {
        let mut g = mlp();
        let out = *g.outputs().first().unwrap();
        g.mark_output(out);
        assert_eq!(g.outputs().len(), 1);
    }
}
