//! Memory planning: CMEM weight placement and VMEM tile sizing.
//!
//! TPUv4i's 128 MiB CMEM exists because (Lesson 1) SRAM got cheap enough
//! at 7 nm while HBM bandwidth energy did not improve. The planner
//! decides which weight tensors live in CMEM; the steady-state serving
//! loop then reads them at CMEM bandwidth/energy instead of HBM's.
//! Experiment E6 sweeps the CMEM capacity through this planner.

use std::collections::HashSet;

use tpu_arch::{ChipConfig, MemLevel};

use crate::graph::{Graph, HloOp, OpId};

/// Where each weight tensor resides, plus VMEM tiling parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    cmem_resident: HashSet<OpId>,
    /// Bytes of CMEM used by resident weights.
    pub cmem_used: u64,
    /// Bytes of weights left in HBM.
    pub hbm_weight_bytes: u64,
    /// Chosen output-column tile width for matmuls (multiple of MXU dim).
    pub col_tile: u64,
    /// Whether any weight did not fit in CMEM.
    pub overflowed_cmem: bool,
}

impl MemoryPlan {
    /// The memory level serving a weight tensor in the steady state.
    pub fn weight_home(&self, id: OpId) -> MemLevel {
        if self.cmem_resident.contains(&id) {
            MemLevel::Cmem
        } else {
            MemLevel::Hbm
        }
    }

    /// Number of CMEM-resident weight tensors.
    pub fn resident_count(&self) -> usize {
        self.cmem_resident.len()
    }

    /// The CMEM-resident weight ids, in id order.
    pub fn residents(&self) -> Vec<OpId> {
        let mut v: Vec<OpId> = self.cmem_resident.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Assembles a plan directly from its fields, with no checking.
    ///
    /// Exists so verifier mutation tests can fabricate inconsistent
    /// plans; anything built this way must pass
    /// [`Verifier::verify_memory`](crate::verify::Verifier::verify_memory).
    pub fn from_parts(
        cmem_resident: HashSet<OpId>,
        cmem_used: u64,
        hbm_weight_bytes: u64,
        col_tile: u64,
        overflowed_cmem: bool,
    ) -> MemoryPlan {
        MemoryPlan {
            cmem_resident,
            cmem_used,
            hbm_weight_bytes,
            col_tile,
            overflowed_cmem,
        }
    }

    /// Fraction of weight bytes served from CMEM.
    pub fn cmem_fraction(&self) -> f64 {
        let total = self.cmem_used + self.hbm_weight_bytes;
        if total == 0 {
            0.0
        } else {
            self.cmem_used as f64 / total as f64
        }
    }
}

/// Plans memory for a graph on a chip.
///
/// Weight placement is a greedy knapsack: every weight byte read once per
/// inference saves the same HBM traffic, so the planner simply packs
/// weights (largest first, to cover the bulk of traffic with the fewest
/// allocator entries) until CMEM (or the budget override) is exhausted.
///
/// `cmem_budget_override` lets the E6 ablation sweep capacities without
/// fabricating chip configs; `None` uses the chip's CMEM (0 if absent).
pub fn plan(graph: &Graph, chip: &ChipConfig, cmem_budget_override: Option<u64>) -> MemoryPlan {
    let budget = cmem_budget_override.unwrap_or_else(|| chip.cmem.map_or(0, |c| c.capacity_bytes));

    // Collect weights, largest first.
    let mut weights: Vec<(OpId, u64)> = graph
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, HloOp::Constant))
        .map(|n| (n.id, n.shape.bytes(graph.dtype())))
        .collect();
    weights.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut cmem_resident = HashSet::new();
    let mut cmem_used = 0u64;
    let mut hbm_weight_bytes = 0u64;
    let mut overflowed_cmem = false;
    for (id, bytes) in weights {
        if cmem_used + bytes <= budget {
            cmem_used += bytes;
            cmem_resident.insert(id);
        } else {
            hbm_weight_bytes += bytes;
            overflowed_cmem = true;
        }
    }

    let col_tile = choose_col_tile(chip);

    MemoryPlan {
        cmem_resident,
        cmem_used,
        hbm_weight_bytes,
        col_tile,
        overflowed_cmem,
    }
}

/// Chooses the output-column tile width: the widest multiple of the MXU
/// dimension whose double-buffered working set (weights tile + activation
/// tile + output tile, twice) fits in half of VMEM.
fn choose_col_tile(chip: &ChipConfig) -> u64 {
    let d = chip.mxu_dim as u64;
    let vmem = chip.vmem.capacity_bytes;
    // Working set per column tile of width c (bf16 worst case, 2 B),
    // with a deep-ish contraction of 8d rows of weights:
    //   weights: 8d * c * 2; activations: rows(~512) * 8d * 2; out: 512*c*2
    // Solve roughly for c, clamp to [d, 8d].
    let mut c = 8 * d;
    while c > d {
        let ws = 8 * d * c * 2 * 2 + 512 * 8 * d * 2 + 512 * c * 2 * 2;
        if ws <= vmem / 2 {
            break;
        }
        c -= d;
    }
    c.max(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_numerics::DType;

    fn graph_with_weights(sizes: &[u64]) -> Graph {
        // Build a chain of dots so every constant is used.
        let mut g = Graph::new("t", DType::Int8);
        let mut x = g.parameter(&[1, sizes[0]]).unwrap();
        let mut prev = sizes[0];
        for &s in sizes {
            let w = g.constant(&[prev, s]).unwrap();
            x = g.dot(x, w).unwrap();
            prev = s;
        }
        g.mark_output(x);
        g
    }

    #[test]
    fn everything_fits_in_large_cmem() {
        let g = graph_with_weights(&[1024, 1024, 512]);
        let p = plan(&g, &catalog::tpu_v4i(), None);
        assert_eq!(p.hbm_weight_bytes, 0);
        assert!(!p.overflowed_cmem);
        assert!((p.cmem_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(p.resident_count(), 3);
        assert_eq!(p.cmem_used, g.weight_bytes());
    }

    #[test]
    fn no_cmem_means_everything_in_hbm() {
        let g = graph_with_weights(&[1024, 1024]);
        let p = plan(&g, &catalog::tpu_v3(), None);
        assert_eq!(p.cmem_used, 0);
        assert_eq!(p.hbm_weight_bytes, g.weight_bytes());
        assert_eq!(p.cmem_fraction(), 0.0);
        for n in g.nodes() {
            if matches!(n.op, HloOp::Constant) {
                assert_eq!(p.weight_home(n.id), MemLevel::Hbm);
            }
        }
    }

    #[test]
    fn budget_override_partially_places() {
        let g = graph_with_weights(&[1000, 1000, 1000]);
        // Weights: 1000*1000 x2 + 1000*1000 = 3 MB at int8.
        let p = plan(&g, &catalog::tpu_v4i(), Some(2_100_000));
        assert_eq!(p.resident_count(), 2);
        assert!(p.overflowed_cmem);
        assert!(p.cmem_used <= 2_100_000);
        assert!(p.hbm_weight_bytes > 0);
        let frac = p.cmem_fraction();
        assert!(frac > 0.5 && frac < 0.8, "{frac}");
    }

    #[test]
    fn zero_budget_places_nothing() {
        let g = graph_with_weights(&[256]);
        let p = plan(&g, &catalog::tpu_v4i(), Some(0));
        assert_eq!(p.resident_count(), 0);
        assert!(p.overflowed_cmem);
    }

    #[test]
    fn largest_weights_placed_first() {
        let mut g = Graph::new("t", DType::Int8);
        let x = g.parameter(&[1, 100]).unwrap();
        let big = g.constant(&[100, 5000]).unwrap(); // 500 KB
        let small = g.constant(&[100, 100]).unwrap(); // 10 KB
        let h = g.dot(x, big).unwrap();
        let h2 = g.reshape(h, &[1, 5000]).unwrap();
        let _ = (h2, small);
        // Budget fits only the big one.
        let p = plan(&g, &catalog::tpu_v4i(), Some(500_000));
        assert_eq!(p.weight_home(big), MemLevel::Cmem);
        assert_eq!(p.weight_home(small), MemLevel::Hbm);
    }

    #[test]
    fn col_tile_is_mxu_multiple_and_fits() {
        for chip in catalog::all_chips() {
            let g = graph_with_weights(&[128]);
            let p = plan(&g, &chip, None);
            assert_eq!(p.col_tile % chip.mxu_dim as u64, 0);
            assert!(p.col_tile >= chip.mxu_dim as u64);
            assert!(p.col_tile <= 8 * chip.mxu_dim as u64);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let g = graph_with_weights(&[512, 512, 512]);
        let chip = catalog::tpu_v4i();
        assert_eq!(
            plan(&g, &chip, Some(400_000)),
            plan(&g, &chip, Some(400_000))
        );
    }
}
