//! Static verification of HLO graphs and compilation artifacts.
//!
//! The graph builder API cannot construct an ill-formed graph, but two
//! other producers can: pass rewrites (which assemble graphs through
//! [`Graph::from_parts`]) and hand-built test fixtures. The [`Verifier`]
//! is the single gate both must clear — `compile` runs it on the input
//! graph, the [`PassManager`](crate::passes::PassManager) sandwiches
//! every rewrite with it, and plan-level checks validate the
//! [`MemoryPlan`] and [`FusionMap`] against the graph before lowering.
//!
//! Every violated invariant maps to its own [`VerifyError`] variant so
//! tests can assert *which* invariant a corrupted graph trips.

use std::fmt;

use crate::fusion::FusionMap;
use crate::graph::{Graph, HloOp, OpId};
use crate::memory::MemoryPlan;
use crate::shape::{ShapeError, TensorShape};

/// A violated structural or plan-level invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A node's id does not equal its position in the node list.
    IdMismatch {
        /// Position in the node list.
        position: usize,
        /// The id stored there.
        found: OpId,
    },
    /// An operand id names no node of this graph.
    DanglingOperand {
        /// The node holding the operand.
        node: OpId,
        /// The dangling id.
        operand: OpId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// An operand does not precede its user (SSA order; also rules out
    /// cycles, since ids are positions).
    UseBeforeDef {
        /// The using node.
        node: OpId,
        /// The operand at or after it.
        operand: OpId,
    },
    /// Shape re-inference failed: the operands no longer satisfy the
    /// op's arity/rank/agreement constraints.
    BadShape {
        /// The offending node.
        node: OpId,
        /// The underlying shape error.
        error: ShapeError,
    },
    /// Shape re-inference succeeded but disagrees with the stored shape.
    ShapeMismatch {
        /// The offending node.
        node: OpId,
        /// The shape stored on the node.
        stored: TensorShape,
        /// The shape re-inferred from its operands.
        inferred: TensorShape,
    },
    /// The graph designates no outputs — nothing would be computed.
    NoOutputs,
    /// An output id names no node of this graph.
    DanglingOutput {
        /// The dangling id.
        output: OpId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The memory plan books more CMEM than the chip (or override) has.
    CmemOverbooked {
        /// Bytes the plan claims to use.
        used: u64,
        /// The capacity it had to fit in.
        budget: u64,
    },
    /// The plan's claimed CMEM usage disagrees with the resident set.
    CmemAccountingWrong {
        /// Bytes the plan claims to use.
        claimed: u64,
        /// Bytes the resident tensors actually occupy.
        actual: u64,
    },
    /// CMEM + HBM weight bytes do not add up to the graph's weights.
    WeightAccountingWrong {
        /// CMEM + HBM bytes the plan accounts for.
        claimed: u64,
        /// The graph's total weight bytes.
        actual: u64,
    },
    /// A CMEM resident id names no node of this graph.
    ResidentDangling {
        /// The dangling id.
        id: OpId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A CMEM resident is not a `Constant` — only weights live there.
    ResidentNotConstant {
        /// The non-weight resident.
        id: OpId,
    },
    /// A fusion entry references an id that names no node.
    FusionDangling {
        /// The dangling id.
        id: OpId,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A fused node is not a fusible elementwise/normalization op.
    FusionNodeNotFusible {
        /// The offending node.
        node: OpId,
    },
    /// A cluster root is not a matrix op (nothing to fuse into).
    FusionRootNotMatrix {
        /// The offending root.
        root: OpId,
    },
    /// A cluster root is itself fused into another cluster — clusters
    /// must be single-root.
    FusionRootFused {
        /// The offending root.
        root: OpId,
    },
    /// A fused node's producer chain does not lead to its cluster root —
    /// the cluster is not connected.
    FusionDisconnected {
        /// The offending node.
        node: OpId,
        /// The root it claims.
        root: OpId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::IdMismatch { position, found } => {
                write!(f, "node at position {position} has id {found}")
            }
            VerifyError::DanglingOperand {
                node,
                operand,
                nodes,
            } => write!(f, "{node} uses dangling operand {operand} ({nodes} nodes)"),
            VerifyError::UseBeforeDef { node, operand } => {
                write!(f, "{node} uses {operand}, which does not precede it")
            }
            VerifyError::BadShape { node, error } => {
                write!(f, "{node} fails shape re-inference: {error}")
            }
            VerifyError::ShapeMismatch {
                node,
                stored,
                inferred,
            } => write!(
                f,
                "{node} stores shape {stored} but re-infers to {inferred}"
            ),
            VerifyError::NoOutputs => write!(f, "graph designates no outputs"),
            VerifyError::DanglingOutput { output, nodes } => {
                write!(f, "output {output} does not exist ({nodes} nodes)")
            }
            VerifyError::CmemOverbooked { used, budget } => {
                write!(f, "memory plan books {used} CMEM bytes of {budget}")
            }
            VerifyError::CmemAccountingWrong { claimed, actual } => {
                write!(
                    f,
                    "plan claims {claimed} CMEM bytes, residents occupy {actual}"
                )
            }
            VerifyError::WeightAccountingWrong { claimed, actual } => {
                write!(
                    f,
                    "plan accounts {claimed} weight bytes, graph has {actual}"
                )
            }
            VerifyError::ResidentDangling { id, nodes } => {
                write!(f, "CMEM resident {id} does not exist ({nodes} nodes)")
            }
            VerifyError::ResidentNotConstant { id } => {
                write!(f, "CMEM resident {id} is not a constant")
            }
            VerifyError::FusionDangling { id, nodes } => {
                write!(f, "fusion entry {id} does not exist ({nodes} nodes)")
            }
            VerifyError::FusionNodeNotFusible { node } => {
                write!(f, "fused node {node} is not a fusible op")
            }
            VerifyError::FusionRootNotMatrix { root } => {
                write!(f, "fusion root {root} is not a matrix op")
            }
            VerifyError::FusionRootFused { root } => {
                write!(
                    f,
                    "fusion root {root} is itself fused (clusters must be single-root)"
                )
            }
            VerifyError::FusionDisconnected { node, root } => {
                write!(f, "fused node {node} is not connected to its root {root}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks the invariants every graph must satisfy before lowering.
///
/// Stateless; methods take the artifacts they validate. See the module
/// docs for where each check runs in the compile pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Verifier;

impl Verifier {
    /// A verifier.
    pub fn new() -> Verifier {
        Verifier
    }

    /// Checks structural invariants: ids equal positions, operands exist
    /// and strictly precede their users (SSA / acyclicity), every node's
    /// stored shape matches re-inference from its operands, and outputs
    /// exist and are non-empty.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, walking nodes in id order.
    pub fn verify_graph(&self, graph: &Graph) -> Result<(), VerifyError> {
        let count = graph.nodes().len();
        for (position, node) in graph.nodes().iter().enumerate() {
            if node.id.index() != position {
                return Err(VerifyError::IdMismatch {
                    position,
                    found: node.id,
                });
            }
        }
        for node in graph.nodes() {
            for operand in node.op.operands() {
                if operand.index() >= count {
                    return Err(VerifyError::DanglingOperand {
                        node: node.id,
                        operand,
                        nodes: count,
                    });
                }
                if operand.index() >= node.id.index() {
                    return Err(VerifyError::UseBeforeDef {
                        node: node.id,
                        operand,
                    });
                }
            }
            let inferred = graph.reinfer(node).map_err(|error| VerifyError::BadShape {
                node: node.id,
                error,
            })?;
            if inferred != node.shape {
                return Err(VerifyError::ShapeMismatch {
                    node: node.id,
                    stored: node.shape.clone(),
                    inferred,
                });
            }
        }
        if graph.outputs().is_empty() {
            return Err(VerifyError::NoOutputs);
        }
        for &output in graph.outputs() {
            if output.index() >= count {
                return Err(VerifyError::DanglingOutput {
                    output,
                    nodes: count,
                });
            }
        }
        Ok(())
    }

    /// Checks a memory plan against the graph and a CMEM budget: every
    /// resident is an existing `Constant`, the claimed CMEM usage equals
    /// what the residents occupy and fits the budget, and CMEM + HBM
    /// bytes account for all of the graph's weights.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn verify_memory(
        &self,
        graph: &Graph,
        plan: &MemoryPlan,
        cmem_budget: u64,
    ) -> Result<(), VerifyError> {
        let count = graph.nodes().len();
        let mut actual = 0u64;
        for id in plan.residents() {
            let Some(node) = graph.get(id) else {
                return Err(VerifyError::ResidentDangling { id, nodes: count });
            };
            if !matches!(node.op, HloOp::Constant) {
                return Err(VerifyError::ResidentNotConstant { id });
            }
            actual += node.shape.bytes(graph.dtype());
        }
        if plan.cmem_used != actual {
            return Err(VerifyError::CmemAccountingWrong {
                claimed: plan.cmem_used,
                actual,
            });
        }
        if plan.cmem_used > cmem_budget {
            return Err(VerifyError::CmemOverbooked {
                used: plan.cmem_used,
                budget: cmem_budget,
            });
        }
        let claimed = plan.cmem_used + plan.hbm_weight_bytes;
        if claimed != graph.weight_bytes() {
            return Err(VerifyError::WeightAccountingWrong {
                claimed,
                actual: graph.weight_bytes(),
            });
        }
        Ok(())
    }

    /// Checks a fusion map against the graph: every entry names existing
    /// nodes, fused nodes are fusible elementwise ops, roots are
    /// unfused matrix ops (single-root), and every fused node's main
    /// producer chain leads to its claimed root (connected clusters).
    ///
    /// Assumes [`Verifier::verify_graph`] has already passed for
    /// `graph` (the pipeline always runs it first).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, walking fused nodes in id
    /// order.
    pub fn verify_fusion(&self, graph: &Graph, fusion: &FusionMap) -> Result<(), VerifyError> {
        let count = graph.nodes().len();
        let mut entries: Vec<(OpId, OpId)> = graph
            .nodes()
            .iter()
            .filter_map(|n| fusion.root_of(n.id).map(|r| (n.id, r)))
            .collect();
        // Entries for dangling fused ids are invisible above; find them.
        for id in fusion_ids(fusion) {
            if id.index() >= count {
                return Err(VerifyError::FusionDangling { id, nodes: count });
            }
        }
        entries.sort_unstable();
        for (node, root) in entries {
            if root.index() >= count {
                return Err(VerifyError::FusionDangling {
                    id: root,
                    nodes: count,
                });
            }
            if !graph.node(node).op.is_fusible_consumer() {
                return Err(VerifyError::FusionNodeNotFusible { node });
            }
            if !graph.node(root).op.is_matrix_op() {
                return Err(VerifyError::FusionRootNotMatrix { root });
            }
            if fusion.is_fused(root) {
                return Err(VerifyError::FusionRootFused { root });
            }
            // Connectivity: follow main (first non-constant) operands
            // through nodes of the same cluster until the root.
            let mut cursor = node;
            loop {
                let main = graph
                    .node(cursor)
                    .op
                    .operands()
                    .into_iter()
                    .find(|&o| !matches!(graph.node(o).op, HloOp::Constant));
                let Some(main) = main else {
                    return Err(VerifyError::FusionDisconnected { node, root });
                };
                if main == root {
                    break;
                }
                if fusion.root_of(main) == Some(root) {
                    cursor = main;
                    continue;
                }
                return Err(VerifyError::FusionDisconnected { node, root });
            }
        }
        Ok(())
    }
}

/// All ids a fusion map mentions (fused nodes, then roots), in id order.
fn fusion_ids(fusion: &FusionMap) -> Vec<OpId> {
    let mut ids: Vec<OpId> = fusion.entries().flat_map(|(n, r)| [n, r]).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_numerics::DType;

    fn mlp() -> Graph {
        let mut g = Graph::new("mlp", DType::Bf16);
        let x = g.parameter(&[8, 256]).unwrap();
        let w1 = g.constant(&[256, 512]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.constant(&[512, 10]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn builder_graphs_verify() {
        Verifier::new().verify_graph(&mlp()).unwrap();
    }

    #[test]
    fn planner_output_verifies() {
        let g = mlp();
        let chip = tpu_arch::catalog::tpu_v4i();
        let plan = crate::memory::plan(&g, &chip, None);
        let budget = chip.cmem.map_or(0, |c| c.capacity_bytes);
        Verifier::new().verify_memory(&g, &plan, budget).unwrap();
    }

    #[test]
    fn fuse_output_verifies() {
        let g = mlp();
        let fusion = crate::fusion::fuse(&g);
        assert!(fusion.fused_count() > 0);
        Verifier::new().verify_fusion(&g, &fusion).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::UseBeforeDef {
            node: OpId::from_raw(3),
            operand: OpId::from_raw(7),
        };
        let s = format!("{e}");
        assert!(s.contains("%3") && s.contains("%7"), "{s}");
    }
}
