//! Tensor shapes and shape errors.

use std::fmt;

use tpu_numerics::DType;

/// A dense row-major tensor shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorShape {
    dims: Vec<u64>,
}

/// Error produced by shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension was zero.
    ZeroDim,
    /// A shape had no dimensions.
    Scalar,
    /// Two shapes that must match do not.
    Mismatch {
        /// Description of the constraint that failed.
        context: &'static str,
        /// Left-hand shape.
        lhs: TensorShape,
        /// Right-hand shape.
        rhs: TensorShape,
    },
    /// The op requires a different rank.
    BadRank {
        /// Description of the op.
        context: &'static str,
        /// Rank found.
        found: usize,
        /// Rank expected.
        expected: usize,
    },
    /// A reshape changed the element count.
    ElementCountChanged {
        /// Elements before.
        from: u64,
        /// Elements requested.
        to: u64,
    },
    /// An operand id does not name an existing node of this graph
    /// (out of range: fabricated, or from a different graph).
    UnknownOperand {
        /// Description of the operand slot.
        context: &'static str,
        /// The offending id's raw index.
        index: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDim => write!(f, "shape has a zero dimension"),
            ShapeError::Scalar => write!(f, "shape must have at least one dimension"),
            ShapeError::Mismatch { context, lhs, rhs } => {
                write!(f, "{context}: {lhs} vs {rhs}")
            }
            ShapeError::BadRank {
                context,
                found,
                expected,
            } => write!(f, "{context}: rank {found}, expected {expected}"),
            ShapeError::ElementCountChanged { from, to } => {
                write!(f, "reshape changes element count {from} -> {to}")
            }
            ShapeError::UnknownOperand {
                context,
                index,
                nodes,
            } => write!(
                f,
                "{context}: operand %{index} does not exist ({nodes} nodes)"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

impl TensorShape {
    /// Creates a shape, validating that it is non-scalar with no zero dims.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Scalar`] or [`ShapeError::ZeroDim`].
    pub fn new(dims: &[u64]) -> Result<TensorShape, ShapeError> {
        if dims.is_empty() {
            return Err(ShapeError::Scalar);
        }
        if dims.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        Ok(TensorShape {
            dims: dims.to_vec(),
        })
    }

    /// The dimensions.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Storage size in bytes at the given precision.
    pub fn bytes(&self, dtype: DType) -> u64 {
        self.elements() * dtype.size_bytes()
    }

    /// The leading (batch) dimension.
    pub fn leading(&self) -> u64 {
        self.dims[0]
    }

    /// The trailing (feature) dimension.
    pub fn trailing(&self) -> u64 {
        *self.dims.last().expect("shapes are non-scalar")
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(TensorShape::new(&[2, 3]).is_ok());
        assert_eq!(TensorShape::new(&[]), Err(ShapeError::Scalar));
        assert_eq!(TensorShape::new(&[4, 0]), Err(ShapeError::ZeroDim));
    }

    #[test]
    fn accessors() {
        let s = TensorShape::new(&[4, 8, 16]).unwrap();
        assert_eq!(s.rank(), 3);
        assert_eq!(s.elements(), 512);
        assert_eq!(s.bytes(DType::Bf16), 1024);
        assert_eq!(s.bytes(DType::Int8), 512);
        assert_eq!(s.leading(), 4);
        assert_eq!(s.trailing(), 16);
    }

    #[test]
    fn display() {
        let s = TensorShape::new(&[1, 128]).unwrap();
        assert_eq!(format!("{s}"), "[1, 128]");
        let e = ShapeError::ElementCountChanged { from: 4, to: 5 };
        assert!(format!("{e}").contains("4 -> 5"));
    }
}
