//! Dead-code elimination.

use super::{remap_op, Pass, PassResult};
use crate::graph::{Graph, HloOp, Node, OpId};

/// Removes nodes not reachable from any graph output, compacting ids.
///
/// **Parameters always survive**, dead or not: they are the graph's call
/// signature, and the deterministic evaluator keys parameter values by
/// ordinal — deleting an unused parameter would renumber the rest and
/// silently change what every later parameter "means" to callers (and to
/// differential tests). Dead *constants* are the valuable kill: the
/// memory planner knapsacks every constant in the graph, so an orphaned
/// weight squats on CMEM budget until this pass collects it.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let nodes = graph.nodes();
        let mut live = vec![false; nodes.len()];
        let mut stack: Vec<OpId> = graph.outputs().to_vec();
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut live[id.index()], true) {
                continue;
            }
            stack.extend(graph.node(id).op.operands());
        }
        for node in nodes {
            if matches!(node.op, HloOp::Parameter) {
                live[node.id.index()] = true;
            }
        }
        if live.iter().all(|&l| l) {
            return PassResult::unchanged();
        }

        // Compact: old id -> new id for survivors, then remap operands.
        let mut remap = vec![OpId::from_raw(0); nodes.len()];
        let mut kept: Vec<Node> = Vec::new();
        for node in nodes {
            if !live[node.id.index()] {
                continue;
            }
            let new_id = OpId::from_raw(kept.len() as u32);
            remap[node.id.index()] = new_id;
            kept.push(Node {
                id: new_id,
                op: remap_op(&node.op, |o| remap[o.index()]),
                shape: node.shape.clone(),
            });
        }
        let outputs = graph.outputs().iter().map(|o| remap[o.index()]).collect();
        PassResult::rewritten(Graph::from_parts(
            graph.name(),
            graph.dtype(),
            kept,
            outputs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verifier;
    use tpu_numerics::DType;

    #[test]
    fn dead_constant_is_collected_and_ids_compacted() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let _dead = g.constant(&[512, 512]).unwrap();
        let w = g.constant(&[8, 8]).unwrap();
        let d = g.dot(x, w).unwrap();
        g.mark_output(d);
        let before_bytes = g.weight_bytes();

        let out = Dce.run(&g).rewrite.expect("should rewrite");
        Verifier::new().verify_graph(&out).unwrap();
        assert_eq!(out.nodes().len(), 3);
        assert!(out.weight_bytes() < before_bytes);
        assert_eq!(out.flops(), g.flops());
    }

    #[test]
    fn dead_parameter_survives() {
        let mut g = Graph::new("t", DType::Bf16);
        let _unused = g.parameter(&[16, 16]).unwrap();
        let x = g.parameter(&[4, 8]).unwrap();
        let r = g.relu(x).unwrap();
        g.mark_output(r);

        // The unused parameter keeps the graph fully live.
        assert!(Dce.run(&g).rewrite.is_none());
    }

    #[test]
    fn clean_graph_is_untouched() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let w = g.constant(&[8, 8]).unwrap();
        let d = g.dot(x, w).unwrap();
        g.mark_output(d);
        assert!(Dce.run(&g).rewrite.is_none());
    }

    #[test]
    fn dead_chain_behind_live_node_is_fully_collected() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let w = g.constant(&[8, 8]).unwrap();
        let d = g.dot(x, w).unwrap();
        let dead1 = g.relu(d).unwrap();
        let _dead2 = g.softmax(dead1).unwrap();
        g.mark_output(d);

        let out = Dce.run(&g).rewrite.expect("should rewrite");
        Verifier::new().verify_graph(&out).unwrap();
        assert_eq!(out.nodes().len(), 3);
        assert_eq!(out.outputs().len(), 1);
    }
}
