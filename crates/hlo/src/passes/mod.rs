//! The optimizing pass framework: rewrites gated by the verifier and by
//! semantic-equivalence checks.
//!
//! A [`Pass`] inspects a graph and either leaves it alone, produces a
//! rewritten graph, or produces an analysis (the fusion map). The
//! [`PassManager`] runs its passes in order, repeatedly, until a full
//! sweep changes nothing (a fixpoint) — and sandwiches every rewrite:
//!
//! 1. the input graph is verified once up front;
//! 2. each rewritten graph must pass [`Verifier::verify_graph`];
//! 3. each rewrite must preserve the cost model's MXU flops exactly and
//!    must not increase total live flops (optimizers delete work, they
//!    don't invent it);
//! 4. optionally ([`PassManager::check_equivalence`]), each rewrite is
//!    differentially tested against the [`eval`](crate::eval) reference
//!    evaluator — before/after outputs must agree elementwise.
//!
//! The shipped passes are [`ConstantFold`] (reshape-of-constant
//! collapsing, which is what re-enables CMEM placement for weights a
//! frontend stored flattened), [`Simplify`] (algebraic identities),
//! [`Dce`] (dead-code elimination — parameters are the graph's call
//! signature and always survive), and [`FusionPass`] (the fusion
//! analysis, run last so it sees the final graph).

mod dce;
mod fold;
mod fuse;
mod simplify;

pub use dce::Dce;
pub use fold::ConstantFold;
pub use fuse::FusionPass;
pub use simplify::Simplify;

use std::fmt;

use crate::eval::{self, Divergence, EvalError, EvalOptions};
use crate::fusion::FusionMap;
use crate::graph::{Graph, HloOp, OpId};
use crate::pipeline::CompilerOptions;
use crate::verify::{Verifier, VerifyError};

/// What one pass produced.
#[derive(Debug, Clone, Default)]
pub struct PassResult {
    /// A rewritten graph, or `None` if the pass found nothing to do.
    pub rewrite: Option<Graph>,
    /// A fusion analysis, for analysis passes.
    pub fusion: Option<FusionMap>,
}

impl PassResult {
    /// The result of a pass that found nothing to do.
    pub fn unchanged() -> PassResult {
        PassResult::default()
    }

    /// The result of a rewriting pass.
    pub fn rewritten(graph: Graph) -> PassResult {
        PassResult {
            rewrite: Some(graph),
            fusion: None,
        }
    }
}

/// One unit of optimization: a rewrite or an analysis over a graph.
pub trait Pass {
    /// Short stable name, used in reports and errors.
    fn name(&self) -> &'static str;

    /// Runs the pass. Must return [`PassResult::unchanged`] when there
    /// is nothing to do (the manager uses that to detect the fixpoint),
    /// and must preserve graph semantics: the manager verifies and
    /// differentially tests every rewrite.
    fn run(&self, graph: &Graph) -> PassResult;
}

/// Error produced by a gated pass run.
#[derive(Debug, Clone, PartialEq)]
pub enum PassError {
    /// A graph failed verification (`pass` is `"input"` for the
    /// pre-pipeline check, else the offending pass's name).
    Verify {
        /// Which pass produced the graph.
        pass: &'static str,
        /// The violated invariant.
        error: VerifyError,
    },
    /// A rewrite changed the live MXU flop count — matrix work must be
    /// preserved exactly (it is what the cost model and simulator bill).
    MatrixFlopsChanged {
        /// The offending pass.
        pass: &'static str,
        /// Live MXU flops before.
        before: u64,
        /// Live MXU flops after.
        after: u64,
    },
    /// A rewrite increased total live flops.
    FlopsIncreased {
        /// The offending pass.
        pass: &'static str,
        /// Live flops before.
        before: u64,
        /// Live flops after.
        after: u64,
    },
    /// Differential testing found diverging outputs.
    NotEquivalent {
        /// The offending pass.
        pass: &'static str,
        /// The worst disagreement.
        divergence: Divergence,
    },
    /// The reference evaluator itself failed.
    Eval {
        /// The pass being checked.
        pass: &'static str,
        /// The underlying error.
        error: EvalError,
    },
    /// The pipeline did not reach a fixpoint within the sweep budget
    /// (two passes fighting each other).
    FixpointDiverged {
        /// Sweeps executed.
        sweeps: usize,
    },
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Verify { pass, error } => {
                write!(f, "graph after pass `{pass}` fails verification: {error}")
            }
            PassError::MatrixFlopsChanged {
                pass,
                before,
                after,
            } => {
                write!(f, "pass `{pass}` changed MXU flops {before} -> {after}")
            }
            PassError::FlopsIncreased {
                pass,
                before,
                after,
            } => {
                write!(f, "pass `{pass}` increased live flops {before} -> {after}")
            }
            PassError::NotEquivalent { pass, divergence } => {
                write!(f, "pass `{pass}` changed semantics: {divergence}")
            }
            PassError::Eval { pass, error } => {
                write!(f, "evaluating around pass `{pass}`: {error}")
            }
            PassError::FixpointDiverged { sweeps } => {
                write!(f, "pipeline did not reach a fixpoint in {sweeps} sweeps")
            }
        }
    }
}

impl std::error::Error for PassError {}

/// The outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The optimized graph.
    pub graph: Graph,
    /// The fusion analysis of the *final* graph (empty when no fusion
    /// pass ran).
    pub fusion: FusionMap,
    /// Names of passes that rewrote the graph, in application order.
    pub applied: Vec<&'static str>,
    /// Full sweeps executed (1 = already at fixpoint).
    pub sweeps: usize,
    /// Node count before optimization.
    pub nodes_before: usize,
    /// Node count after optimization.
    pub nodes_after: usize,
}

/// Runs passes to a fixpoint, verifier-gated (see module docs).
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_sweeps: usize,
    equivalence: Option<(f32, EvalOptions)>,
}

impl PassManager {
    /// An empty manager (running it returns the input unchanged).
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            max_sweeps: 8,
            equivalence: None,
        }
    }

    /// Appends a pass to the pipeline.
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Enables differential testing of every rewrite against the
    /// reference evaluator, under a relative tolerance. Expensive —
    /// evaluation executes the graph's actual math — so this is a
    /// testing/experiment knob, not a production-compile default.
    #[must_use]
    pub fn check_equivalence(mut self, tolerance: f32) -> PassManager {
        self.equivalence = Some((tolerance, EvalOptions::default()));
        self
    }

    /// Names of the passes, in pipeline order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] when the input fails verification, a
    /// rewrite breaks an invariant, or no fixpoint is reached.
    pub fn run(&self, graph: &Graph) -> Result<PassReport, PassError> {
        let verifier = Verifier::new();
        verifier
            .verify_graph(graph)
            .map_err(|error| PassError::Verify {
                pass: "input",
                error,
            })?;

        let mut current = graph.clone();
        let mut fusion: Option<FusionMap> = None;
        let mut applied = Vec::new();
        let mut sweeps = 0usize;
        loop {
            if sweeps >= self.max_sweeps {
                return Err(PassError::FixpointDiverged { sweeps });
            }
            sweeps += 1;
            let mut changed = false;
            for pass in &self.passes {
                let result = pass.run(&current);
                if let Some(f) = result.fusion {
                    fusion = Some(f);
                }
                if let Some(next) = result.rewrite {
                    self.gate(pass.name(), &verifier, &current, &next)?;
                    applied.push(pass.name());
                    fusion = None; // analysis invalidated by the rewrite
                    current = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let fusion = fusion.unwrap_or_default();
        verifier
            .verify_fusion(&current, &fusion)
            .map_err(|error| PassError::Verify {
                pass: "fusion",
                error,
            })?;

        Ok(PassReport {
            fusion,
            applied,
            sweeps,
            nodes_before: graph.nodes().len(),
            nodes_after: current.nodes().len(),
            graph: current,
        })
    }

    /// The verifier/equivalence sandwich applied to one rewrite.
    fn gate(
        &self,
        pass: &'static str,
        verifier: &Verifier,
        before: &Graph,
        after: &Graph,
    ) -> Result<(), PassError> {
        verifier
            .verify_graph(after)
            .map_err(|error| PassError::Verify { pass, error })?;
        let (mxu_before, total_before) = live_flops(before);
        let (mxu_after, total_after) = live_flops(after);
        if mxu_after != mxu_before {
            return Err(PassError::MatrixFlopsChanged {
                pass,
                before: mxu_before,
                after: mxu_after,
            });
        }
        if total_after > total_before {
            return Err(PassError::FlopsIncreased {
                pass,
                before: total_before,
                after: total_after,
            });
        }
        if let Some((tolerance, eval_options)) = &self.equivalence {
            let lhs = eval::evaluate_with(before, eval_options)
                .map_err(|error| PassError::Eval { pass, error })?;
            let rhs = eval::evaluate_with(after, eval_options)
                .map_err(|error| PassError::Eval { pass, error })?;
            if let Some(divergence) = eval::outputs_divergence(&lhs, &rhs, *tolerance) {
                return Err(PassError::NotEquivalent { pass, divergence });
            }
        }
        Ok(())
    }
}

/// The graph-pass pipeline a set of compiler options selects, in the
/// order `compile` runs it. Verification is always on; differential
/// testing is opt-in via [`PassManager::check_equivalence`].
pub fn pipeline_for(options: &CompilerOptions) -> PassManager {
    let mut pm = PassManager::new();
    if options.fold {
        pm = pm.with_pass(ConstantFold);
    }
    if options.simplify {
        pm = pm.with_pass(Simplify);
    }
    if options.dce {
        pm = pm.with_pass(Dce);
    }
    if options.fusion {
        pm = pm.with_pass(FusionPass);
    }
    pm
}

/// `(MXU flops, total flops)` over the nodes reachable from the
/// outputs. Dead nodes are excluded on both sides of a rewrite so DCE
/// is flop-neutral by definition.
pub(crate) fn live_flops(graph: &Graph) -> (u64, u64) {
    let mut live = vec![false; graph.nodes().len()];
    let mut stack: Vec<OpId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        stack.extend(graph.node(id).op.operands());
    }
    let mut mxu = 0u64;
    let mut total = 0u64;
    for node in graph.nodes() {
        if !live[node.id.index()] {
            continue;
        }
        let f = graph.node_flops(node);
        total += f;
        if node.op.is_matrix_op() {
            mxu += f;
        }
    }
    (mxu, total)
}

/// Clones an op with every operand id passed through `f` (the shared
/// helper rewrite passes remap through).
pub(crate) fn remap_op(op: &HloOp, f: impl Fn(OpId) -> OpId) -> HloOp {
    match *op {
        HloOp::Parameter => HloOp::Parameter,
        HloOp::Constant => HloOp::Constant,
        HloOp::Dot { lhs, rhs } => HloOp::Dot {
            lhs: f(lhs),
            rhs: f(rhs),
        },
        HloOp::Conv2d {
            input,
            kernel,
            stride,
        } => HloOp::Conv2d {
            input: f(input),
            kernel: f(kernel),
            stride,
        },
        HloOp::Activate { input, act } => HloOp::Activate {
            input: f(input),
            act,
        },
        HloOp::Binary { a, b, kind } => HloOp::Binary {
            a: f(a),
            b: f(b),
            kind,
        },
        HloOp::Softmax { input } => HloOp::Softmax { input: f(input) },
        HloOp::LayerNorm { input } => HloOp::LayerNorm { input: f(input) },
        HloOp::Embedding { table, batch, seq } => HloOp::Embedding {
            table: f(table),
            batch,
            seq,
        },
        HloOp::MaxPool2d { input, window } => HloOp::MaxPool2d {
            input: f(input),
            window,
        },
        HloOp::Reshape { input } => HloOp::Reshape { input: f(input) },
        HloOp::GateReduce { input, factor } => HloOp::GateReduce {
            input: f(input),
            factor,
        },
        HloOp::BatchMatmul {
            a,
            b,
            batch,
            m,
            k,
            n,
        } => HloOp::BatchMatmul {
            a: f(a),
            b: f(b),
            batch,
            m,
            k,
            n,
        },
    }
}

/// Rewrites every operand and output through a sparse replacement map
/// (resolved transitively), leaving replaced nodes in place as orphans
/// for [`Dce`] to collect. Returns `None` when the map changes nothing.
pub(crate) fn substitute(graph: &Graph, replace: &[Option<OpId>]) -> Option<Graph> {
    if replace.iter().all(Option::is_none) {
        return None;
    }
    let resolve = |mut id: OpId| {
        // Chains are short (simplify builds at most a few hops), but
        // resolve fully to be safe; acyclic because replacements always
        // point at earlier nodes.
        while let Some(Some(next)) = replace.get(id.index()) {
            id = *next;
        }
        id
    };
    let nodes = graph
        .nodes()
        .iter()
        .map(|n| crate::graph::Node {
            id: n.id,
            op: remap_op(&n.op, resolve),
            shape: n.shape.clone(),
        })
        .collect();
    let outputs = graph.outputs().iter().map(|&o| resolve(o)).collect();
    Some(Graph::from_parts(
        graph.name(),
        graph.dtype(),
        nodes,
        outputs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_numerics::DType;

    fn dirty_graph() -> Graph {
        // A flattened weight behind a reshape, a duplicate relu, and a
        // dead constant: one artifact per pass.
        let mut g = Graph::new("dirty", DType::Bf16);
        let x = g.parameter(&[4, 32]).unwrap();
        let wflat = g.constant(&[32 * 16]).unwrap();
        let w = g.reshape(wflat, &[32, 16]).unwrap();
        let h = g.dot(x, w).unwrap();
        let r1 = g.relu(h).unwrap();
        let r2 = g.relu(r1).unwrap();
        let _dead = g.constant(&[64, 64]).unwrap();
        g.mark_output(r2);
        g
    }

    fn o2_manager() -> PassManager {
        PassManager::new()
            .with_pass(ConstantFold)
            .with_pass(Simplify)
            .with_pass(Dce)
            .with_pass(FusionPass)
            .check_equivalence(1e-4)
    }

    #[test]
    fn pipeline_cleans_dirty_graph() {
        let g = dirty_graph();
        let report = o2_manager().run(&g).unwrap();
        // Folded, deduped, collected: param, const, dot, relu.
        assert_eq!(report.nodes_after, 4);
        assert!(report.applied.contains(&"constant-fold"));
        assert!(report.applied.contains(&"simplify"));
        assert!(report.applied.contains(&"dce"));
        assert_eq!(report.fusion.fused_count(), 1); // relu into dot
        Verifier::new().verify_graph(&report.graph).unwrap();
    }

    #[test]
    fn pipeline_is_idempotent_at_fixpoint() {
        let g = dirty_graph();
        let pm = o2_manager();
        let once = pm.run(&g).unwrap();
        let twice = pm.run(&once.graph).unwrap();
        assert_eq!(once.graph, twice.graph);
        assert!(twice.applied.is_empty());
        assert_eq!(twice.sweeps, 1);
    }

    #[test]
    fn equivalence_check_passes_on_real_passes() {
        // check_equivalence is on in o2_manager(); a semantics-changing
        // rewrite would have errored. Also assert outputs directly.
        let g = dirty_graph();
        let report = o2_manager().run(&g).unwrap();
        let before = crate::eval::evaluate(&g).unwrap();
        let after = crate::eval::evaluate(&report.graph).unwrap();
        assert!(crate::eval::outputs_divergence(&before, &after, 1e-4).is_none());
    }

    #[test]
    fn malicious_pass_is_rejected_by_the_sandwich() {
        // A "pass" that deletes the final relu outright: caught by the
        // flop invariant or the differential check.
        struct DropRelu;
        impl Pass for DropRelu {
            fn name(&self) -> &'static str {
                "drop-relu"
            }
            fn run(&self, graph: &Graph) -> PassResult {
                let mut replace = vec![None; graph.nodes().len()];
                for n in graph.nodes() {
                    if let HloOp::Activate { input, .. } = n.op {
                        replace[n.id.index()] = Some(input);
                    }
                }
                match substitute(graph, &replace) {
                    Some(g) => PassResult::rewritten(g),
                    None => PassResult::unchanged(),
                }
            }
        }
        let g = dirty_graph();
        let err = PassManager::new()
            .with_pass(DropRelu)
            .check_equivalence(1e-4)
            .run(&g)
            .unwrap_err();
        match err {
            PassError::FlopsIncreased { .. } | PassError::MatrixFlopsChanged { .. } => {
                panic!("wrong invariant: {err}")
            }
            PassError::NotEquivalent { pass, .. } => assert_eq!(pass, "drop-relu"),
            // Dropping VPU work lowers total flops (allowed) so the
            // differential check must be the one to catch it.
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn fighting_passes_hit_the_sweep_budget() {
        // Flips the binary kind every run: never converges.
        struct Flip;
        impl Pass for Flip {
            fn name(&self) -> &'static str {
                "flip"
            }
            fn run(&self, graph: &Graph) -> PassResult {
                let (name, dtype, mut nodes, outputs) = graph.clone().into_parts();
                for n in &mut nodes {
                    if let HloOp::Binary { a, b, kind } = n.op {
                        let kind = match kind {
                            crate::graph::BinaryKind::Add => crate::graph::BinaryKind::Max,
                            _ => crate::graph::BinaryKind::Add,
                        };
                        n.op = HloOp::Binary { a, b, kind };
                    }
                }
                PassResult::rewritten(Graph::from_parts(&name, dtype, nodes, outputs))
            }
        }
        let mut g = Graph::new("t", DType::Bf16);
        let a = g.parameter(&[2, 2]).unwrap();
        let s = g.add(a, a).unwrap();
        g.mark_output(s);
        let err = PassManager::new().with_pass(Flip).run(&g).unwrap_err();
        assert!(matches!(err, PassError::FixpointDiverged { .. }));
    }

    #[test]
    fn empty_manager_returns_input() {
        let g = dirty_graph();
        let report = PassManager::new().run(&g).unwrap();
        assert_eq!(report.graph, g);
        assert_eq!(report.fusion.fused_count(), 0);
        assert!(report.applied.is_empty());
    }
}
