//! Constant folding: `Reshape(Constant)` collapses to a `Constant`.
//!
//! This is the pass with a directly measurable hardware consequence.
//! The lowering pass only treats a *direct* `Constant` operand as a
//! CMEM-placeable weight; a constant hiding behind a reshape (the shape
//! frontends emit when they store weights flattened on disk) streams
//! from HBM every step. Folding the reshape away re-exposes the weight
//! to the CMEM knapsack — on TPUv4i that is the difference between a
//! 1.3 GB/s HBM stream and on-die SRAM.

use super::{Pass, PassResult};
use crate::graph::{Graph, HloOp};

/// Rewrites `Reshape(Constant)` nodes into `Constant` nodes in place
/// (same id, the reshape's shape), leaving the original constant as an
/// orphan for [`Dce`](super::Dce).
///
/// Soundness rests on the deterministic-evaluation contract: a
/// constant's elements are a function of **linear index only** (see
/// [`eval`](crate::eval)), and a reshape is a row-major relabeling that
/// preserves linear order — so the folded constant holds exactly the
/// bytes the reshape produced.
pub struct ConstantFold;

impl Pass for ConstantFold {
    fn name(&self) -> &'static str {
        "constant-fold"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let (name, dtype, mut nodes, outputs) = graph.clone().into_parts();
        let mut changed = false;
        // One forward walk folds whole chains: once node i becomes a
        // Constant, a later Reshape of node i folds in the same sweep
        // because we test against the *updated* ops.
        for i in 0..nodes.len() {
            let HloOp::Reshape { input } = nodes[i].op else {
                continue;
            };
            if matches!(nodes[input.index()].op, HloOp::Constant) {
                nodes[i].op = HloOp::Constant;
                changed = true;
            }
        }
        if !changed {
            return PassResult::unchanged();
        }
        PassResult::rewritten(Graph::from_parts(&name, dtype, nodes, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::verify::Verifier;
    use tpu_numerics::DType;

    #[test]
    fn reshape_of_constant_folds() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 32]).unwrap();
        let flat = g.constant(&[32 * 16]).unwrap();
        let w = g.reshape(flat, &[32, 16]).unwrap();
        let d = g.dot(x, w).unwrap();
        g.mark_output(d);

        let out = ConstantFold.run(&g).rewrite.expect("should fold");
        Verifier::new().verify_graph(&out).unwrap();
        assert!(matches!(out.node(w).op, HloOp::Constant));
        assert_eq!(out.node(w).shape, g.node(w).shape);

        // Value-preserving: constants are a function of linear index.
        let before = eval::evaluate(&g).unwrap();
        let after = eval::evaluate(&out).unwrap();
        assert!(eval::outputs_divergence(&before, &after, 0.0).is_none());
    }

    #[test]
    fn reshape_chain_folds_in_one_run() {
        let mut g = Graph::new("t", DType::Bf16);
        let flat = g.constant(&[64]).unwrap();
        let a = g.reshape(flat, &[8, 8]).unwrap();
        let b = g.reshape(a, &[4, 16]).unwrap();
        g.mark_output(b);

        let out = ConstantFold.run(&g).rewrite.expect("should fold");
        assert!(matches!(out.node(a).op, HloOp::Constant));
        assert!(matches!(out.node(b).op, HloOp::Constant));
    }

    #[test]
    fn reshape_of_parameter_is_left_alone() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let r = g.reshape(x, &[32]).unwrap();
        g.mark_output(r);
        assert!(ConstantFold.run(&g).rewrite.is_none());
    }
}
