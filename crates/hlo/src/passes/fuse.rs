//! Fusion as a pass: wraps the [`fusion`](crate::fusion) analysis.

use super::{Pass, PassResult};
use crate::fusion;
use crate::graph::Graph;

/// Runs the fusion analysis and publishes its [`FusionMap`]
/// (crate::fusion::FusionMap) through the pass manager.
///
/// This is an *analysis* pass: it never rewrites the graph, so it never
/// perturbs the fixpoint loop. It should sit last in a pipeline — the
/// manager drops any earlier fusion result when a later pass rewrites
/// the graph, and re-running the sweep recomputes it against the final
/// graph, which is exactly what the lowering pass must consume.
pub struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        PassResult {
            rewrite: None,
            fusion: Some(fusion::fuse(graph)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{Dce, PassManager, Simplify};
    use tpu_numerics::DType;

    #[test]
    fn fusion_map_matches_the_final_graph() {
        // The duplicate relu blocks fusion of the outer one; after
        // simplify+dce the surviving relu fuses into the dot. The map
        // the manager returns must describe the *final* graph.
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 64]).unwrap();
        let w = g.constant(&[64, 64]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r1 = g.relu(d).unwrap();
        let r2 = g.relu(r1).unwrap();
        g.mark_output(r2);

        let report = PassManager::new()
            .with_pass(Simplify)
            .with_pass(Dce)
            .with_pass(FusionPass)
            .run(&g)
            .unwrap();
        assert_eq!(report.graph.nodes().len(), 4);
        assert_eq!(report.fusion.fused_count(), 1);
        let root = report
            .fusion
            .entries()
            .next()
            .map(|(_, root)| root)
            .unwrap();
        assert!(report.graph.node(root).op.is_matrix_op());
    }

    #[test]
    fn analysis_alone_does_not_spin_the_fixpoint() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 64]).unwrap();
        let w = g.constant(&[64, 64]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r = g.relu(d).unwrap();
        g.mark_output(r);

        let report = PassManager::new().with_pass(FusionPass).run(&g).unwrap();
        assert_eq!(report.sweeps, 1);
        assert!(report.applied.is_empty());
        assert_eq!(report.fusion.fused_count(), 1);
    }
}
