//! Algebraic simplification: identity-op removal and idempotence.

use super::{substitute, Pass, PassResult};
use crate::graph::{BinaryKind, Graph, HloOp};
use tpu_numerics::activation::Activation;

/// Replaces nodes that provably compute the same value as one of their
/// operands:
///
/// - `identity(x)` → `x`, and `relu(relu(x))` → `relu(x)` (ReLU is the
///   only idempotent nonlinearity in the op set);
/// - `max(x, x)` → `x`;
/// - `reshape(x)` to `x`'s own shape → `x`;
/// - `reshape(reshape(x))` → `reshape(x)` with the outer target shape
///   (row-major reshape composition);
/// - `maxpool(x, window=1)` and `gate_reduce(x, factor=1)` → `x`.
///
/// Replaced nodes are left in place as orphans (same ids) and collected
/// by [`Dce`](super::Dce); uses and outputs are redirected here.
pub struct Simplify;

impl Pass for Simplify {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(&self, graph: &Graph) -> PassResult {
        let nodes = graph.nodes();
        let mut replace = vec![None; nodes.len()];
        let mut rewrote_ops = false;
        let (name, dtype, mut new_nodes, outputs) = graph.clone().into_parts();

        // Resolve an operand through replacements decided earlier in
        // this same walk (operands precede users, so one pass suffices).
        let resolve = |replace: &[Option<crate::graph::OpId>], mut id: crate::graph::OpId| {
            while let Some(Some(next)) = replace.get(id.index()) {
                id = *next;
            }
            id
        };

        for i in 0..nodes.len() {
            match nodes[i].op {
                HloOp::Activate { input, act } => {
                    let src = resolve(&replace, input);
                    // relu(relu(x)) -> relu(x): ReLU is the op set's only
                    // idempotent nonlinearity.
                    let relu_of_relu = act == Activation::Relu
                        && matches!(
                            nodes[src.index()].op,
                            HloOp::Activate {
                                act: Activation::Relu,
                                ..
                            }
                        );
                    if act == Activation::Identity || relu_of_relu {
                        replace[i] = Some(src);
                    }
                }
                HloOp::Binary {
                    a,
                    b,
                    kind: BinaryKind::Max,
                } => {
                    let (a, b) = (resolve(&replace, a), resolve(&replace, b));
                    if a == b {
                        replace[i] = Some(a);
                    }
                }
                HloOp::Reshape { input } => {
                    let src = resolve(&replace, input);
                    if nodes[src.index()].shape == nodes[i].shape {
                        replace[i] = Some(src);
                    } else if let HloOp::Reshape { input: inner } = nodes[src.index()].op {
                        // Collapse reshape-of-reshape: retarget the
                        // outer node at the innermost source. Its stored
                        // shape is already the final target.
                        new_nodes[i].op = HloOp::Reshape {
                            input: resolve(&replace, inner),
                        };
                        rewrote_ops = true;
                    }
                }
                HloOp::MaxPool2d { input, window: 1 } => {
                    replace[i] = Some(resolve(&replace, input));
                }
                HloOp::GateReduce { input, factor: 1 } => {
                    replace[i] = Some(resolve(&replace, input));
                }
                _ => {}
            }
        }

        if rewrote_ops {
            let rewritten = Graph::from_parts(&name, dtype, new_nodes, outputs);
            // Apply any replacements found in the same walk on top.
            match substitute(&rewritten, &replace) {
                Some(g) => PassResult::rewritten(g),
                None => PassResult::rewritten(rewritten),
            }
        } else {
            match substitute(graph, &replace) {
                Some(g) => PassResult::rewritten(g),
                None => PassResult::unchanged(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::verify::Verifier;
    use tpu_numerics::DType;

    fn check_equiv(before: &Graph, after: &Graph) {
        Verifier::new().verify_graph(after).unwrap();
        let lhs = eval::evaluate(before).unwrap();
        let rhs = eval::evaluate(after).unwrap();
        assert!(eval::outputs_divergence(&lhs, &rhs, 0.0).is_none());
    }

    #[test]
    fn duplicate_relu_collapses() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let r1 = g.relu(x).unwrap();
        let r2 = g.relu(r1).unwrap();
        let r3 = g.relu(r2).unwrap();
        g.mark_output(r3);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        // The whole tower resolves to the innermost relu.
        assert_eq!(out.outputs(), &[r1]);
    }

    #[test]
    fn identity_activation_is_removed() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let id = g
            .activate(x, tpu_numerics::activation::Activation::Identity)
            .unwrap();
        g.mark_output(id);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        assert_eq!(out.outputs(), &[x]);
    }

    #[test]
    fn max_of_same_operand_collapses() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let m = g.binary(x, x, BinaryKind::Max).unwrap();
        g.mark_output(m);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        assert_eq!(out.outputs(), &[x]);
    }

    #[test]
    fn noop_reshape_is_removed() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let r = g.reshape(x, &[4, 8]).unwrap();
        g.mark_output(r);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        assert_eq!(out.outputs(), &[x]);
    }

    #[test]
    fn reshape_of_reshape_collapses() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let a = g.reshape(x, &[32]).unwrap();
        let b = g.reshape(a, &[8, 4]).unwrap();
        g.mark_output(b);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        // The outer reshape now reads straight from the parameter.
        assert_eq!(out.node(b).op, HloOp::Reshape { input: x });
    }

    #[test]
    fn unit_pool_and_unit_gate_reduce_are_removed() {
        let mut g = Graph::new("t", DType::Bf16);
        let img = g.parameter(&[1, 4, 4, 2]).unwrap();
        let p = g.max_pool2d(img, 1).unwrap();
        g.mark_output(p);
        let out = Simplify.run(&g).rewrite.expect("should simplify");
        check_equiv(&g, &out);
        assert_eq!(out.outputs(), &[img]);

        let mut g2 = Graph::new("t", DType::Bf16);
        let x = g2.parameter(&[4, 8]).unwrap();
        let gr = g2.gate_reduce(x, 1).unwrap();
        g2.mark_output(gr);
        let out2 = Simplify.run(&g2).rewrite.expect("should simplify");
        check_equiv(&g2, &out2);
        assert_eq!(out2.outputs(), &[x]);
    }

    #[test]
    fn gelu_is_not_treated_as_idempotent() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let g1 = g
            .activate(x, tpu_numerics::activation::Activation::Gelu)
            .unwrap();
        let g2 = g
            .activate(g1, tpu_numerics::activation::Activation::Gelu)
            .unwrap();
        g.mark_output(g2);
        assert!(Simplify.run(&g).rewrite.is_none());
    }

    #[test]
    fn clean_graph_is_untouched() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 8]).unwrap();
        let w = g.constant(&[8, 8]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r = g.relu(d).unwrap();
        g.mark_output(r);
        assert!(Simplify.run(&g).rewrite.is_none());
    }
}
