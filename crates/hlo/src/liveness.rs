//! VMEM liveness analysis.
//!
//! Intermediates live in VMEM between their definition and their last
//! use. With 16 MiB of VMEM and transformer activations in the tens of
//! megabytes, not everything fits: the lowering pass consults this
//! analysis (through the spill threshold) to decide which intermediates
//! round-trip through HBM. The analysis is also useful on its own — the
//! peak-residency number is the compiler's answer to "what batch size
//! can this model run at without spilling?".

use std::collections::HashSet;

use tpu_numerics::DType;

use crate::graph::{Graph, HloOp, OpId};

/// Liveness facts for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Liveness {
    /// For each node (by index): the index of its last consumer, or its
    /// own index if unused (dead) / `usize::MAX` if it is a graph output
    /// (live to the end).
    last_use: Vec<usize>,
    /// Peak simultaneously-live intermediate bytes.
    pub peak_bytes: u64,
    /// The node at whose definition the peak occurs.
    pub peak_at: Option<OpId>,
    /// Nodes live at the peak.
    pub live_at_peak: Vec<OpId>,
}

impl Liveness {
    /// The last node index at which `id`'s value is needed.
    pub fn last_use(&self, id: OpId) -> usize {
        self.last_use[id.index()]
    }

    /// Whether `id` is still live after node `at` executes.
    pub fn live_after(&self, id: OpId, at: usize) -> bool {
        self.last_use[id.index()] > at
    }
}

/// Whether a node's value occupies VMEM (constants stream per tile and
/// parameters arrive via DMA — both *do* occupy VMEM once materialized;
/// only constants are exempt, they live in HBM/CMEM).
fn occupies_vmem(op: &HloOp) -> bool {
    !matches!(op, HloOp::Constant)
}

/// Computes liveness and peak VMEM residency for a graph at its dtype.
pub fn analyze(graph: &Graph) -> Liveness {
    let n = graph.nodes().len();
    let dtype: DType = graph.dtype();
    let mut last_use: Vec<usize> = (0..n).collect();
    for node in graph.nodes() {
        for operand in node.op.operands() {
            last_use[operand.index()] = last_use[operand.index()].max(node.id.index());
        }
    }
    let outputs: HashSet<usize> = graph.outputs().iter().map(|o| o.index()).collect();
    for (i, lu) in last_use.iter_mut().enumerate() {
        if outputs.contains(&i) {
            *lu = usize::MAX;
        }
    }

    // Sweep definitions in order, tracking the live set.
    let mut live: Vec<OpId> = Vec::new();
    let mut live_bytes = 0u64;
    let mut peak_bytes = 0u64;
    let mut peak_at = None;
    let mut live_at_peak = Vec::new();
    for node in graph.nodes() {
        let i = node.id.index();
        // The node's inputs and its output coexist while it executes, so
        // the definition is counted before dying operands are released.
        if occupies_vmem(&node.op) {
            live.push(node.id);
            live_bytes += node.shape.bytes(dtype);
        }
        if live_bytes > peak_bytes {
            peak_bytes = live_bytes;
            peak_at = Some(node.id);
            live_at_peak = live.clone();
        }
        // Release everything whose last use is this node (including the
        // node itself when it is dead).
        live.retain(|id| {
            let keep = last_use[id.index()] > i;
            if !keep {
                live_bytes -= graph.node(*id).shape.bytes(dtype);
            }
            keep
        });
    }

    Liveness {
        last_use,
        peak_bytes,
        peak_at,
        live_at_peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_numerics::DType;

    fn chain() -> Graph {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[4, 256]).unwrap(); // 2 KiB
        let w1 = g.constant(&[256, 512]).unwrap();
        let h1 = g.dot(x, w1).unwrap(); // 4 KiB
        let h2 = g.relu(h1).unwrap(); // 4 KiB
        let w2 = g.constant(&[512, 128]).unwrap();
        let y = g.dot(h2, w2).unwrap(); // 1 KiB
        g.mark_output(y);
        g
    }

    #[test]
    fn last_uses_are_correct() {
        let g = chain();
        let l = analyze(&g);
        // x (id 0) last used by first dot (id 2).
        assert_eq!(l.last_use(OpId(0)), 2);
        // h1 (id 2) last used by relu (id 3).
        assert_eq!(l.last_use(OpId(2)), 3);
        // Output (id 5) lives to the end.
        assert_eq!(l.last_use(OpId(5)), usize::MAX);
        assert!(l.live_after(OpId(5), 5));
        assert!(!l.live_after(OpId(0), 2));
    }

    #[test]
    fn peak_counts_only_simultaneous_intermediates() {
        let g = chain();
        let l = analyze(&g);
        // Peak is at the relu, where its input h1 (4 KiB) and output h2
        // (4 KiB) coexist (x died at the dot).
        assert_eq!(l.peak_bytes, 4096 + 4096);
        assert_eq!(l.peak_at, Some(OpId(3)));
        assert_eq!(l.live_at_peak.len(), 2);
    }

    #[test]
    fn constants_do_not_occupy_vmem() {
        let mut g = Graph::new("t", DType::Bf16);
        let _w = g.constant(&[4096, 4096]).unwrap(); // 32 MiB, unused
        let x = g.parameter(&[1, 16]).unwrap();
        g.mark_output(x);
        let l = analyze(&g);
        assert_eq!(l.peak_bytes, 32); // just the parameter
    }

    #[test]
    fn residuals_extend_liveness() {
        // x feeds both the dot and a later add: it must stay live across
        // the dot's execution.
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap(); // 2 KiB
        let w = g.constant(&[128, 128]).unwrap();
        let d = g.dot(x, w).unwrap(); // 2 KiB
        let s = g.add(d, x).unwrap(); // 2 KiB
        g.mark_output(s);
        let l = analyze(&g);
        assert_eq!(l.last_use(x), s.index());
        // Peak: x + d live together (then s replaces d while x dies).
        assert_eq!(l.peak_bytes, 3 * 2048);
    }

    #[test]
    fn transformer_block_peak_scales_with_batch() {
        fn mini_block(batch: u64) -> Graph {
            let mut g = Graph::new("mini", DType::Bf16);
            let x = g.parameter(&[batch, 128, 256]).unwrap();
            let w1 = g.constant(&[256, 1024]).unwrap();
            let a = g.dot(x, w1).unwrap();
            let a = g.gelu(a).unwrap();
            let w2 = g.constant(&[1024, 256]).unwrap();
            let o = g.dot(a, w2).unwrap();
            let s = g.add(o, x).unwrap();
            g.mark_output(s);
            g
        }
        let small = analyze(&mini_block(1)).peak_bytes;
        let big = analyze(&mini_block(16)).peak_bytes;
        assert_eq!(big, 16 * small);
    }
}
