//! Lowering: tiling HLO onto the MXU, emitting the simulator step plan
//! and a schematic VLIW program.
//!
//! For each matrix op the lowerer walks the output-column tile loop the
//! real compiler would generate: DMA a weight tile from its home (HBM or
//! CMEM) into VMEM, stream activations through the systolic array, apply
//! fused elementwise work on the VPU, and DMA graph outputs back to HBM.
//! With double buffering enabled the weight DMA of tile *i+1* does not
//! wait for compute of tile *i*; without it the loop serializes — the
//! difference is one of the compiler gains E7 measures.

use tpu_arch::{ChipConfig, Generation, MemLevel};
use tpu_isa::prelude::*;
use tpu_numerics::DType;
use tpu_sim::plan::{StepId, StepKind, StepPlan};

use crate::fusion::FusionMap;
use crate::graph::{Graph, HloOp, Node, OpId};
use crate::liveness::{self, Liveness};
use crate::memory::MemoryPlan;
use crate::pipeline::CompilerOptions;

/// Intermediates larger than this fraction of VMEM spill to HBM (the
/// rest of VMEM is needed for weight tiles and double buffering).
const SPILL_VMEM_FRACTION: f64 = 0.25;

/// Everything lowering produces.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The tile-level schedule for the simulator.
    pub plan: StepPlan,
    /// A schematic VLIW program in the target's encoding.
    pub program: Program,
    /// Whether matmuls carry extra VPU merge passes to reproduce another
    /// generation's accumulation order bit-exactly (E14).
    pub accum_emulated: bool,
}

/// Per-node bookkeeping: the steps that produce a node's value in VMEM.
type ProducedBy = Vec<Vec<StepId>>;

/// Where a matmul's right-hand operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeightSource {
    /// Streamed per tile from HBM or CMEM (weights).
    Streamed(MemLevel),
    /// Already resident in VMEM (computed activations).
    InVmem(OpId),
}

/// Lowers a graph for a chip.
pub fn lower(
    graph: &Graph,
    chip: &ChipConfig,
    fusion: &FusionMap,
    memory: &MemoryPlan,
    options: &CompilerOptions,
) -> Lowered {
    let mut ctx = Ctx {
        graph,
        chip,
        fusion,
        memory,
        options,
        plan: StepPlan::new(graph.name()),
        program: Program::new(chip.generation),
        produced: vec![Vec::new(); graph.nodes().len()],
        spilled: vec![false; graph.nodes().len()],
        spill_threshold: (chip.vmem.capacity_bytes as f64 * SPILL_VMEM_FRACTION) as u64,
        liveness: liveness::analyze(graph),
        next_mxu: 0,
        accum_emulate: needs_accum_emulation(chip, options.bit_exact_with),
    };

    // Dead-code elimination: only nodes reachable from the outputs emit
    // steps (XLA always DCEs; an unused parameter must not cost a DMA).
    let live = reachable_from_outputs(graph);
    for node in graph.nodes() {
        if !live[node.id.index()] {
            continue;
        }
        if fusion.is_fused(node.id) {
            continue; // emitted with its root
        }
        ctx.lower_node(node);
    }

    // Graph outputs (or their fusion tails) stream back to HBM. A
    // spilled output is already in HBM — no second write.
    for &out in graph.outputs() {
        let node = graph.node(out);
        let root = fusion.root_of(out).unwrap_or(out);
        if ctx.spilled[root.index()] {
            continue;
        }
        let deps = ctx.produced[root.index()].clone();
        let bytes = node.shape.bytes(graph.dtype());
        ctx.plan.push_tagged(
            StepKind::DmaOut {
                to: MemLevel::Hbm,
                bytes,
            },
            &deps,
            "output",
        );
        ctx.program.push(Bundle::new().dma(DmaOp::Start {
            queue: 1,
            dir: DmaDirection::new(MemLevel::Vmem, MemLevel::Hbm),
            bytes: bytes.min(u32::MAX as u64) as u32,
        }));
    }
    ctx.program
        .push(Bundle::new().scalar(ScalarOp::SyncDma { queue: 1 }));
    ctx.program.push(Bundle::new().scalar(ScalarOp::Halt));

    Lowered {
        plan: ctx.plan,
        program: ctx.program,
        accum_emulated: ctx.accum_emulate,
    }
}

/// Marks every node reachable (transitively) from a graph output.
fn reachable_from_outputs(graph: &Graph) -> Vec<bool> {
    let mut live = vec![false; graph.nodes().len()];
    let mut stack: Vec<OpId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend(graph.node(id).op.operands());
    }
    live
}

/// Whether bit-exactly reproducing `compat`'s accumulation order on
/// `chip` requires software emulation (Lesson 4 / E14).
///
/// When the systolic widths match, the hardware order *is* the compat
/// order and compatibility is free. When they differ (TPUv1's 256-wide
/// array vs everyone else's 128), the compiler must pop partial sums
/// after each inner tile and merge them on the VPU in the compat order.
pub fn needs_accum_emulation(chip: &ChipConfig, compat: Option<Generation>) -> bool {
    match compat {
        None => false,
        Some(generation) => {
            let compat_dim = match generation {
                Generation::TpuV1 => 256,
                _ => 128,
            };
            compat_dim != chip.mxu_dim
        }
    }
}

struct Ctx<'a> {
    graph: &'a Graph,
    chip: &'a ChipConfig,
    fusion: &'a FusionMap,
    memory: &'a MemoryPlan,
    options: &'a CompilerOptions,
    plan: StepPlan,
    program: Program,
    produced: ProducedBy,
    /// Whether a node's value was written back to HBM because it exceeds
    /// the VMEM spill threshold; consumers re-load it.
    spilled: Vec<bool>,
    spill_threshold: u64,
    liveness: Liveness,
    next_mxu: u8,
    accum_emulate: bool,
}

impl Ctx<'_> {
    fn dtype(&self) -> DType {
        self.graph.dtype()
    }

    /// Steps producing all operands of a node, re-loading spilled ones
    /// from HBM.
    fn operand_steps(&mut self, node: &Node) -> Vec<StepId> {
        let operands = node.op.operands();
        let mut deps = Vec::new();
        for o in operands {
            deps.extend(self.fetch_operand(o));
        }
        deps
    }

    /// Dependencies for reading one operand's value in VMEM: its
    /// producing steps, plus a reload DMA if it was spilled to HBM.
    fn fetch_operand(&mut self, id: OpId) -> Vec<StepId> {
        if !self.spilled[id.index()] {
            return self.produced[id.index()].clone();
        }
        let bytes = self.graph.node(id).shape.bytes(self.dtype());
        let deps = self.produced[id.index()].clone();
        let reload = self.plan.push_tagged(
            StepKind::DmaIn {
                from: MemLevel::Hbm,
                bytes,
            },
            &deps,
            "spill-in",
        );
        self.program.push(Bundle::new().dma(DmaOp::Start {
            queue: 2,
            dir: DmaDirection::new(MemLevel::Hbm, MemLevel::Vmem),
            bytes: bytes.min(u32::MAX as u64) as u32,
        }));
        vec![reload]
    }

    /// Spills a freshly produced value to HBM if it exceeds the VMEM
    /// threshold and is still needed later. Parameters are exempt: their
    /// pristine copy already lives in HBM, so consumers simply re-read
    /// (marked spilled with no write-back).
    fn maybe_spill(&mut self, node: &Node) {
        let bytes = node.shape.bytes(self.dtype());
        if bytes <= self.spill_threshold {
            return;
        }
        if !self.liveness.live_after(node.id, node.id.index()) {
            return; // dying immediately; nothing to keep
        }
        if matches!(node.op, HloOp::Parameter) {
            self.spilled[node.id.index()] = true;
            return;
        }
        let deps = self.produced[node.id.index()].clone();
        let out = self.plan.push_tagged(
            StepKind::DmaOut {
                to: MemLevel::Hbm,
                bytes,
            },
            &deps,
            "spill-out",
        );
        self.program.push(Bundle::new().dma(DmaOp::Start {
            queue: 2,
            dir: DmaDirection::new(MemLevel::Vmem, MemLevel::Hbm),
            bytes: bytes.min(u32::MAX as u64) as u32,
        }));
        self.produced[node.id.index()] = vec![out];
        self.spilled[node.id.index()] = true;
    }

    fn pick_mxu(&mut self) -> u8 {
        // ISA MXU indices are per-core (the encoding's mxu_max tracks
        // mxus_per_core); the simulator's pool covers all cores.
        let n = self.chip.mxus_per_core.max(1) as u8;
        let m = self.next_mxu % n;
        self.next_mxu = self.next_mxu.wrapping_add(1);
        m
    }

    fn lower_node(&mut self, node: &Node) {
        match node.op {
            HloOp::Parameter => {
                let bytes = node.shape.bytes(self.dtype());
                let s = self.plan.push_tagged(
                    StepKind::DmaIn {
                        from: MemLevel::Hbm,
                        bytes,
                    },
                    &[],
                    "param",
                );
                self.program.push(Bundle::new().dma(DmaOp::Start {
                    queue: 0,
                    dir: DmaDirection::new(MemLevel::Hbm, MemLevel::Vmem),
                    bytes: bytes.min(u32::MAX as u64) as u32,
                }));
                self.produced[node.id.index()] = vec![s];
                self.maybe_spill(node);
            }
            HloOp::Constant => {
                // Weights are streamed per tile by consumers.
            }
            HloOp::Dot { lhs, rhs } => {
                let k = self.graph.node(rhs).shape.leading();
                let n = self.graph.node(rhs).shape.trailing();
                let rows = self.graph.node(lhs).shape.elements() / k;
                let source = self.weight_source(rhs);
                self.lower_matmul(node, rows, k, n, source, lhs);
            }
            HloOp::Conv2d { input, kernel, .. } => {
                let ks = &self.graph.node(kernel).shape;
                let (kh, kw, cin, cout) = (ks.dims()[0], ks.dims()[1], ks.dims()[2], ks.dims()[3]);
                let rows = node.shape.elements() / cout; // n*oh*ow
                let inner = kh * kw * cin;
                let source = self.weight_source(kernel);
                self.lower_matmul(node, rows, inner, cout, source, input);
            }
            HloOp::BatchMatmul {
                a,
                b,
                batch,
                m,
                k,
                n,
            } => {
                self.lower_matmul(node, batch * m, k, n, WeightSource::InVmem(b), a);
            }
            HloOp::Embedding { table, .. } => {
                // Gather: random-access reads; charge 2x for row granularity.
                let bytes = 2 * node.shape.bytes(self.dtype());
                let home = match self.weight_source(table) {
                    WeightSource::Streamed(home) => home,
                    WeightSource::InVmem(_) => MemLevel::Vmem,
                };
                let s = self
                    .plan
                    .push_tagged(StepKind::DmaIn { from: home, bytes }, &[], "embed");
                self.program.push(Bundle::new().dma(DmaOp::Start {
                    queue: 0,
                    dir: DmaDirection::new(home, MemLevel::Vmem),
                    bytes: bytes.min(u32::MAX as u64) as u32,
                }));
                self.produced[node.id.index()] = vec![s];
                self.maybe_spill(node);
            }
            HloOp::Reshape { input } => {
                self.produced[node.id.index()] = self.produced[input.index()].clone();
                self.spilled[node.id.index()] = self.spilled[input.index()];
            }
            HloOp::Activate { .. }
            | HloOp::Binary { .. }
            | HloOp::Softmax { .. }
            | HloOp::LayerNorm { .. }
            | HloOp::GateReduce { .. }
            | HloOp::MaxPool2d { .. } => {
                // Standalone VPU work (fused instances are skipped upstream).
                let deps = self.operand_steps(node);
                let ops = self.graph.node_flops(node).max(1);
                let s = self.plan.push_tagged(
                    StepKind::Vpu {
                        elements: ops,
                        ops_per_element: 1,
                    },
                    &deps,
                    node.op.mnemonic(),
                );
                self.program.push(Bundle::new().vector(VectorOp::VXf {
                    dst: VReg(1),
                    a: VReg(0),
                }));
                self.produced[node.id.index()] = vec![s];
                self.maybe_spill(node);
            }
        }
    }

    /// Where a matmul's right-hand operand comes from: constants stream
    /// from their planned home (HBM or CMEM); computed operands are
    /// already in VMEM.
    fn weight_source(&self, id: OpId) -> WeightSource {
        if matches!(self.graph.node(id).op, HloOp::Constant) {
            if self.options.cmem {
                WeightSource::Streamed(self.memory.weight_home(id))
            } else {
                WeightSource::Streamed(MemLevel::Hbm)
            }
        } else if self.produced[id.index()].is_empty() {
            // A parameter used directly as weights: stream from HBM.
            WeightSource::Streamed(MemLevel::Hbm)
        } else {
            WeightSource::InVmem(id)
        }
    }

    /// The shared matmul/conv/batch-matmul tile loop.
    fn lower_matmul(
        &mut self,
        node: &Node,
        rows: u64,
        inner: u64,
        cols: u64,
        weights: WeightSource,
        act_input: OpId,
    ) {
        let dtype = self.dtype();
        let act_deps: Vec<StepId> = self.fetch_operand(act_input);

        // Column tiling: bounded by the VMEM working set (memory plan)
        // and split across the MXU pool so independent output-column
        // chunks run on different MXUs, as XLA does.
        let d = self.chip.mxu_dim as u64;
        let pool = (self.chip.mxus_per_core * self.chip.cores).max(1) as u64;
        let mut col_tile = self.memory.col_tile.min(cols.max(1));
        let target_chunks = pool.min(cols.div_ceil(d)).max(1);
        let per_mxu = cols.div_ceil(target_chunks).div_ceil(d) * d;
        col_tile = col_tile.min(per_mxu.max(d));
        let chunks = cols.div_ceil(col_tile).max(1);

        let mxu = self.pick_mxu();
        let mut chunk_steps: Vec<StepId> = Vec::with_capacity(chunks as usize);
        let mut prev_compute: Option<StepId> = None;

        // Emit the ISA tile loop once, with a loop marker for repetition.
        let weight_tile_bytes = inner * col_tile * dtype.size_bytes();
        let mut head = Bundle::new().scalar(ScalarOp::LoadImm {
            dst: SReg(1),
            imm: chunks.min(i32::MAX as u64) as i32,
        });
        if let WeightSource::Streamed(home) = weights {
            head = head.dma(DmaOp::Start {
                queue: 0,
                dir: DmaDirection::new(home, MemLevel::Vmem),
                bytes: weight_tile_bytes.min(u32::MAX as u64) as u32,
            });
        }
        self.program.push(head);
        self.program
            .push(Bundle::new().mxu(MxuOp::PushWeights { mxu }));
        self.program.push(
            Bundle::new()
                .mxu(MxuOp::MatMul {
                    mxu,
                    rows: rows.min(u16::MAX as u64) as u16,
                })
                .scalar(ScalarOp::LoopEnd {
                    counter: SReg(1),
                    offset: 2,
                }),
        );

        for c in 0..chunks {
            let this_cols = col_tile.min(cols - c * col_tile);
            let mut cdeps: Vec<StepId> = Vec::new();
            match weights {
                WeightSource::Streamed(home) => {
                    let wbytes = inner * this_cols * dtype.size_bytes();
                    // Weight tile DMA. Without double buffering it waits
                    // for the previous chunk's compute.
                    let mut wdeps: Vec<StepId> = Vec::new();
                    if !self.options.double_buffer {
                        if let Some(p) = prev_compute {
                            wdeps.push(p);
                        }
                    }
                    let wdma = self.plan.push_tagged(
                        StepKind::DmaIn {
                            from: home,
                            bytes: wbytes,
                        },
                        &wdeps,
                        "weights",
                    );
                    cdeps.push(wdma);
                }
                WeightSource::InVmem(op) => {
                    cdeps.extend(self.fetch_operand(op));
                }
            }
            // Compute depends on its weights and the activations; chunks
            // of one op are independent and spread over the MXU pool.
            cdeps.extend(act_deps.iter().copied());
            let compute = self.plan.push_tagged(
                StepKind::Mxu {
                    rows,
                    cols: this_cols,
                    inner,
                    dtype,
                    weights_resident: false,
                },
                &cdeps,
                node.op.mnemonic(),
            );
            prev_compute = Some(compute);
            let chunk_out = if self.accum_emulate {
                // Bit-exact emulation of a different systolic width: pop
                // partial sums after each inner tile and merge on the VPU
                // in the compat order (see `needs_accum_emulation`).
                let inner_tiles = inner.div_ceil(d).max(1);
                self.plan.push_tagged(
                    StepKind::Vpu {
                        elements: rows * this_cols * inner_tiles,
                        ops_per_element: 1,
                    },
                    &[compute],
                    "accum-merge",
                )
            } else {
                compute
            };
            chunk_steps.push(chunk_out);
        }

        // Fused elementwise tail, if any.
        let cluster = self.fusion.cluster_of(node.id);
        let mut tail_steps = chunk_steps.clone();
        if !cluster.is_empty() {
            let fused_ops: u64 = cluster
                .iter()
                .map(|&id| self.graph.node_flops(self.graph.node(id)))
                .sum();
            let vpu = self.plan.push_tagged(
                StepKind::Vpu {
                    elements: fused_ops.max(1),
                    ops_per_element: 1,
                },
                &tail_steps,
                "fused",
            );
            self.program.push(Bundle::new().vector(VectorOp::VXf {
                dst: VReg(2),
                a: VReg(1),
            }));
            tail_steps = vec![vpu];
        }

        self.produced[node.id.index()] = tail_steps.clone();
        for &id in &cluster {
            self.produced[id.index()] = tail_steps.clone();
        }
        // The materialized value is the cluster tail's (same shape class
        // as the root); spill if it exceeds the threshold.
        self.maybe_spill(node);
        if self.spilled[node.id.index()] {
            for &id in &cluster {
                self.produced[id.index()] = self.produced[node.id.index()].clone();
                self.spilled[id.index()] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::memory;
    use crate::pipeline::CompilerOptions;
    use tpu_arch::catalog;
    use tpu_sim::Simulator;

    fn simple_graph() -> Graph {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[64, 512]).unwrap();
        let w = g.constant(&[512, 2048]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r = g.relu(d).unwrap();
        g.mark_output(r);
        g
    }

    fn lower_with(g: &Graph, chip: &tpu_arch::ChipConfig, opt: &CompilerOptions) -> Lowered {
        let f = if opt.fusion {
            fuse(g)
        } else {
            FusionMap::default()
        };
        let m = memory::plan(g, chip, opt.cmem_budget_override);
        lower(g, chip, &f, &m, opt)
    }

    #[test]
    fn plan_has_dma_compute_output() {
        let g = simple_graph();
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        let tags: Vec<&str> = l.plan.steps().iter().map(|s| s.tag.as_str()).collect();
        assert!(tags.contains(&"param"));
        assert!(tags.contains(&"weights"));
        assert!(tags.contains(&"dot"));
        assert!(tags.contains(&"fused"));
        assert!(tags.contains(&"output"));
    }

    #[test]
    fn plan_flops_match_graph_flops_for_matmuls() {
        let g = simple_graph();
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        // The MXU flops in the plan must equal the graph's dot flops.
        let mxu_flops: u64 = l
            .plan
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Mxu { .. }))
            .map(|s| s.kind.flops())
            .sum();
        let dot_flops = 2 * 64 * 512 * 2048;
        assert_eq!(mxu_flops, dot_flops);
    }

    #[test]
    fn program_verifies_and_encodes_per_generation() {
        let g = simple_graph();
        for chip in catalog::all_chips() {
            let l = lower_with(&g, &chip, &CompilerOptions::no_cmem());
            l.program
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", chip.name));
            tpu_isa::encode(&l.program).unwrap();
        }
    }

    #[test]
    fn cmem_option_moves_weight_traffic() {
        let g = simple_graph();
        let chip = catalog::tpu_v4i();
        let with = lower_with(&g, &chip, &CompilerOptions::default());
        let without = lower_with(&g, &chip, &CompilerOptions::no_cmem());
        let (hbm_with, cmem_with) = with.plan.channel_traffic();
        let (hbm_without, cmem_without) = without.plan.channel_traffic();
        assert_eq!(cmem_without, 0);
        assert!(cmem_with > 0);
        assert!(hbm_with < hbm_without);
        // Total weight bytes conserved across placements.
        assert_eq!(hbm_with + cmem_with, hbm_without + cmem_without);
    }

    #[test]
    fn double_buffering_speeds_up_simulation() {
        let mut g = Graph::new("big", DType::Bf16);
        let x = g.parameter(&[256, 4096]).unwrap();
        let w = g.constant(&[4096, 8192]).unwrap();
        let d = g.dot(x, w).unwrap();
        g.mark_output(d);
        let chip = catalog::tpu_v4i();
        let mut on = CompilerOptions::no_cmem();
        on.double_buffer = true;
        let mut off = CompilerOptions::no_cmem();
        off.double_buffer = false;
        let sim = Simulator::new(chip.clone());
        let t_on = sim.run(&lower_with(&g, &chip, &on).plan).unwrap().seconds;
        let t_off = sim.run(&lower_with(&g, &chip, &off).plan).unwrap().seconds;
        assert!(
            t_on < t_off,
            "double buffering must help: {t_on} vs {t_off}"
        );
    }

    #[test]
    fn fusion_removes_standalone_vpu_round_trips() {
        let g = simple_graph();
        let chip = catalog::tpu_v4i();
        let no_fuse = CompilerOptions {
            fusion: false,
            ..CompilerOptions::default()
        };
        let fused = lower_with(&g, &chip, &CompilerOptions::default());
        let unfused = lower_with(&g, &chip, &no_fuse);
        let count = |l: &Lowered, tag: &str| l.plan.steps().iter().filter(|s| s.tag == tag).count();
        assert_eq!(count(&fused, "fused"), 1);
        assert_eq!(count(&fused, "act"), 0);
        assert_eq!(count(&unfused, "fused"), 0);
        assert_eq!(count(&unfused, "act"), 1);
    }

    #[test]
    fn accum_emulation_rules() {
        let v4i = catalog::tpu_v4i();
        assert!(!needs_accum_emulation(&v4i, None));
        // v2/v3 use the same 128-wide order as v4i: free.
        assert!(!needs_accum_emulation(&v4i, Some(Generation::TpuV3)));
        // v1's 256-wide order must be emulated.
        assert!(needs_accum_emulation(&v4i, Some(Generation::TpuV1)));
        let v1 = catalog::tpu_v1();
        assert!(!needs_accum_emulation(&v1, Some(Generation::TpuV1)));
    }

    #[test]
    fn accum_emulation_adds_merge_steps() {
        let g = simple_graph();
        let chip = catalog::tpu_v4i();
        let opts = CompilerOptions {
            bit_exact_with: Some(Generation::TpuV1),
            ..CompilerOptions::default()
        };
        let l = lower_with(&g, &chip, &opts);
        assert!(l.accum_emulated);
        assert!(l.plan.steps().iter().any(|s| s.tag == "accum-merge"));
        let native = lower_with(&g, &chip, &CompilerOptions::default());
        assert!(!native.accum_emulated);
        assert!(!native.plan.steps().iter().any(|s| s.tag == "accum-merge"));
    }

    #[test]
    fn reshape_is_free() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 64]).unwrap();
        let r = g.reshape(x, &[512]).unwrap();
        g.mark_output(r);
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        // param DMA + output DMA only.
        assert_eq!(l.plan.len(), 2);
    }

    #[test]
    fn large_intermediates_spill_and_reload() {
        // A 16 MiB intermediate exceeds v4i's 4 MiB spill threshold.
        let mut g = Graph::new("big", DType::Bf16);
        let x = g.parameter(&[1024, 1024]).unwrap(); // 2 MiB: stays
        let w = g.constant(&[1024, 8192]).unwrap();
        let h = g.dot(x, w).unwrap(); // 16 MiB: spills
        let w2 = g.constant(&[8192, 64]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        let count = |tag: &str| l.plan.steps().iter().filter(|s| s.tag == tag).count();
        assert_eq!(count("spill-out"), 1);
        assert_eq!(count("spill-in"), 1);
        // The small model spills nothing.
        let small = simple_graph();
        let ls = lower_with(&small, &chip, &CompilerOptions::default());
        assert!(!ls.plan.steps().iter().any(|s| s.tag.starts_with("spill")));
    }

    #[test]
    fn spilled_outputs_are_not_written_twice() {
        let mut g = Graph::new("big-out", DType::Bf16);
        let x = g.parameter(&[2048, 1024]).unwrap();
        let w = g.constant(&[1024, 8192]).unwrap();
        let h = g.dot(x, w).unwrap(); // 32 MiB, spilled...
        let r = g.relu(h).unwrap(); // ...as the fusion tail
        g.mark_output(r);
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        let spills = l
            .plan
            .steps()
            .iter()
            .filter(|s| s.tag == "spill-out")
            .count();
        let outputs = l.plan.steps().iter().filter(|s| s.tag == "output").count();
        assert_eq!(spills, 1);
        assert_eq!(outputs, 0, "spilled output is already in HBM");
    }

    #[test]
    fn spilling_costs_simulated_time() {
        // Same matmul chain; fatter intermediate => disproportionate time.
        let build = |n: u64| {
            let mut g = Graph::new("sp", DType::Bf16);
            let x = g.parameter(&[512, 512]).unwrap();
            let w = g.constant(&[512, n]).unwrap();
            let h = g.dot(x, w).unwrap();
            let w2 = g.constant(&[n, 64]).unwrap();
            let y = g.dot(h, w2).unwrap();
            g.mark_output(y);
            g
        };
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        // 512x4096x2B = 4 MiB exactly at threshold: no spill.
        let small = lower_with(&build(4096), &chip, &CompilerOptions::default());
        // 512x16384x2B = 16 MiB: spills.
        let big = lower_with(&build(16384), &chip, &CompilerOptions::default());
        assert!(!small
            .plan
            .steps()
            .iter()
            .any(|s| s.tag.starts_with("spill")));
        assert!(big.plan.steps().iter().any(|s| s.tag.starts_with("spill")));
        let t_small = sim.run(&small.plan).unwrap().seconds;
        let t_big = sim.run(&big.plan).unwrap().seconds;
        assert!(t_big > t_small);
    }

    #[test]
    fn dead_nodes_emit_no_steps() {
        let mut g = Graph::new("dead", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let w = g.constant(&[128, 128]).unwrap();
        let y = g.dot(x, w).unwrap();
        // A dead branch: unused parameter and an unused dot.
        let dead_x = g.parameter(&[64, 512]).unwrap();
        let dead_w = g.constant(&[512, 512]).unwrap();
        let _dead = g.dot(dead_x, dead_w).unwrap();
        g.mark_output(y);
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        // Two param DMAs would exist without DCE; only one must remain.
        let params = l.plan.steps().iter().filter(|s| s.tag == "param").count();
        assert_eq!(params, 1);
        // And no MXU work for the dead dot (512-inner tiles absent).
        let mxu_flops: u64 = l
            .plan
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Mxu { .. }))
            .map(|s| s.kind.flops())
            .sum();
        assert_eq!(mxu_flops, 2 * 8 * 128 * 128);
    }

    #[test]
    fn conv_lowered_as_implicit_gemm() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[1, 28, 28, 64]).unwrap();
        let k = g.constant(&[3, 3, 64, 128]).unwrap();
        let c = g.conv2d(x, k, 1).unwrap();
        g.mark_output(c);
        let chip = catalog::tpu_v4i();
        let l = lower_with(&g, &chip, &CompilerOptions::default());
        let mxu_flops: u64 = l
            .plan
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Mxu { .. }))
            .map(|s| s.kind.flops())
            .sum();
        assert_eq!(mxu_flops, 2 * (28 * 28) * (3 * 3 * 64) * 128);
    }
}
