//! Operator fusion: elementwise consumers fold into matrix producers.
//!
//! XLA's single most valuable TPU optimization class: a `dot` followed by
//! a bias-add and a ReLU should write VMEM once, not three times. We
//! model fusion as a map from fused node to its *root* producer; the
//! lowering pass then emits the fused VPU work in the producer's step
//! chain with no intermediate DMA.

use std::collections::HashMap;

use crate::graph::{Graph, HloOp, OpId};

/// The result of the fusion pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FusionMap {
    /// Maps a fused node to the matrix op it was folded into.
    fused_into: HashMap<OpId, OpId>,
}

impl FusionMap {
    /// Assembles a map directly from `(fused node, root)` entries, with
    /// no checking.
    ///
    /// Exists so verifier mutation tests can fabricate ill-formed
    /// clusters; anything built this way must pass
    /// [`Verifier::verify_fusion`](crate::verify::Verifier::verify_fusion).
    pub fn from_entries(entries: &[(OpId, OpId)]) -> FusionMap {
        FusionMap {
            fused_into: entries.iter().copied().collect(),
        }
    }

    /// The root producer a node was fused into, if any.
    pub fn root_of(&self, id: OpId) -> Option<OpId> {
        self.fused_into.get(&id).copied()
    }

    /// Iterates `(fused node, root)` entries in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        self.fused_into.iter().map(|(k, v)| (*k, *v))
    }

    /// Whether a node was fused away (emits no standalone steps).
    pub fn is_fused(&self, id: OpId) -> bool {
        self.fused_into.contains_key(&id)
    }

    /// Number of fused nodes.
    pub fn fused_count(&self) -> usize {
        self.fused_into.len()
    }

    /// Nodes fused into `root`, in id order.
    pub fn cluster_of(&self, root: OpId) -> Vec<OpId> {
        let mut v: Vec<OpId> = self
            .fused_into
            .iter()
            .filter(|(_, r)| **r == root)
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }
}

/// Runs the fusion pass.
///
/// A node fuses into a producer chain when it
/// (a) is a fusible elementwise/normalization op,
/// (b) has exactly one consumer path from a matrix op (dot/conv), i.e.
///     its input either *is* a matrix op or is already fused, and
/// (c) the producer's output is consumed only by this node (no fan-out —
///     a second consumer would still need the unfused intermediate).
///
/// Graph outputs can be fused: the fused chain's result is what gets
/// written out.
pub fn fuse(graph: &Graph) -> FusionMap {
    let consumers = graph.consumers();
    let mut map = FusionMap::default();
    for node in graph.nodes() {
        if !node.op.is_fusible_consumer() {
            continue;
        }
        // The "main" operand: first non-constant operand.
        let main = node
            .op
            .operands()
            .into_iter()
            .find(|&o| !matches!(graph.node(o).op, HloOp::Constant));
        let Some(main) = main else { continue };
        // Producer must be a matrix op or already part of a cluster.
        let root = if graph.node(main).op.is_matrix_op() {
            Some(main)
        } else {
            map.root_of(main)
        };
        let Some(root) = root else { continue };
        // No fan-out from the main operand.
        if consumers[main.index()].len() != 1 {
            continue;
        }
        // Secondary operands (e.g. the residual in a binary add) must be
        // cheap to stream: parameters, constants or other finished nodes
        // are fine in this model — we only require they are not *this*
        // cluster (which would be a cycle).
        map.fused_into.insert(node.id, root);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_numerics::activation::Activation;
    use tpu_numerics::DType;

    fn dot_chain() -> (Graph, OpId, OpId, OpId) {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let w = g.constant(&[128, 256]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r = g.relu(d).unwrap();
        let s = g.softmax(r).unwrap();
        g.mark_output(s);
        (g, d, r, s)
    }

    #[test]
    fn chain_fuses_into_dot() {
        let (g, d, r, s) = dot_chain();
        let f = fuse(&g);
        assert_eq!(f.root_of(r), Some(d));
        assert_eq!(f.root_of(s), Some(d));
        assert!(!f.is_fused(d));
        assert_eq!(f.fused_count(), 2);
        assert_eq!(f.cluster_of(d), vec![r, s]);
    }

    #[test]
    fn fan_out_blocks_fusion() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let w = g.constant(&[128, 128]).unwrap();
        let d = g.dot(x, w).unwrap();
        let r = g.relu(d).unwrap(); // would fuse...
        let other = g.softmax(d).unwrap(); // ...but d has two consumers
        g.mark_output(r);
        g.mark_output(other);
        let f = fuse(&g);
        assert!(!f.is_fused(r));
        assert!(!f.is_fused(other));
    }

    #[test]
    fn elementwise_without_matrix_producer_stays() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let r = g.relu(x).unwrap();
        g.mark_output(r);
        let f = fuse(&g);
        assert_eq!(f.fused_count(), 0);
    }

    #[test]
    fn binary_add_bias_fuses() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let w = g.constant(&[128, 256]).unwrap();
        let d = g.dot(x, w).unwrap();
        let bias = g.parameter(&[8, 256]).unwrap();
        let sum = g.add(d, bias).unwrap();
        let act = g.activate(sum, Activation::Gelu).unwrap();
        g.mark_output(act);
        let f = fuse(&g);
        assert_eq!(f.root_of(sum), Some(d));
        assert_eq!(f.root_of(act), Some(d));
    }

    #[test]
    fn conv_chains_fuse_too() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[1, 28, 28, 64]).unwrap();
        let k = g.constant(&[3, 3, 64, 64]).unwrap();
        let c = g.conv2d(x, k, 1).unwrap();
        let r = g.relu(c).unwrap();
        g.mark_output(r);
        let f = fuse(&g);
        assert_eq!(f.root_of(r), Some(c));
    }

    #[test]
    fn reshape_breaks_the_chain() {
        let mut g = Graph::new("t", DType::Bf16);
        let x = g.parameter(&[8, 128]).unwrap();
        let w = g.constant(&[128, 256]).unwrap();
        let d = g.dot(x, w).unwrap();
        let rs = g.reshape(d, &[8 * 256]).unwrap();
        let r = g.relu(rs).unwrap();
        g.mark_output(r);
        let f = fuse(&g);
        // Reshape is not fusible, so relu's producer is not a matrix op
        // nor fused.
        assert!(!f.is_fused(r));
    }
}
