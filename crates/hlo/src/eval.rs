//! A reference evaluator for HLO graphs: the semantic ground truth the
//! pass framework's differential tests compare against.
//!
//! The IR carries no tensor *values* (weights are shapes, not data), so
//! the evaluator assigns deterministic synthetic values:
//!
//! - a `Parameter`'s element `i` is a pure function of the parameter's
//!   *ordinal* (its rank among the graph's parameters, in id order) and
//!   `i` — which is why dead-code elimination keeps parameters: they are
//!   the graph's call signature, and removing one would renumber the
//!   rest;
//! - a `Constant`'s element `i` is a pure function of `i` *alone* (every
//!   weight tensor is "the same checkpoint bytes"). Because a row-major
//!   reshape preserves the linear buffer, this makes
//!   `Reshape(Constant) -> Constant` folding value-preserving by
//!   construction. The trade-off: the evaluator cannot distinguish two
//!   same-sized constants, so a pass that swapped one weight for another
//!   would slip past differential testing — the verifier's structural
//!   checks and the pass unit tests cover that class.
//!
//! Matrix multiplies small enough to afford it are executed on the
//! `tpu-isa` functional [`Interpreter`] — tiled through the systolic
//! MXU with the architectural `PushWeights`/`MatMul`/`PopResults`
//! sequence — so a pass that survives differential testing has been
//! checked against the instruction-level machine model, not just
//! against a second copy of the same Rust loop. Above the budget a
//! plain f32 triple loop is used (same math, no tiling detour).
//!
//! All arithmetic is f32 regardless of the graph's dtype: this is a
//! *semantic* reference, not a numerics model (`tpu-numerics` owns
//! precision effects).

use std::fmt;

use tpu_arch::Generation;
use tpu_isa::asm::assemble;
use tpu_isa::interp::{InterpConfig, InterpError, Interpreter};
use tpu_numerics::activation;

use crate::graph::{BinaryKind, Graph, HloOp, Node, OpId};

/// Error raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The ISA interpreter faulted while executing an MXU tile loop (a
    /// bug in the evaluator's program generation if it ever happens).
    Interp(InterpError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Interp(e) => write!(f, "mxu tile loop faulted: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<InterpError> for EvalError {
    fn from(e: InterpError) -> EvalError {
        EvalError::Interp(e)
    }
}

/// Evaluator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Matmuls up to this many flops run on the `tpu-isa` interpreter's
    /// MXU; larger ones use the plain loop (the tiled detour costs real
    /// time in debug builds).
    pub mxu_flop_budget: u64,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            mxu_flop_budget: 4_000_000,
        }
    }
}

/// The worst elementwise disagreement between two output sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Which output (index into the graphs' output lists).
    pub output: usize,
    /// Linear element index within that output.
    pub index: usize,
    /// Value on the left.
    pub lhs: f32,
    /// Value on the right.
    pub rhs: f32,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output {} element {}: {} vs {}",
            self.output, self.index, self.lhs, self.rhs
        )
    }
}

/// Evaluates a graph with default options, returning one f32 buffer per
/// designated output, in output order.
///
/// # Errors
///
/// Propagates ISA-interpreter faults (see [`EvalError`]).
pub fn evaluate(graph: &Graph) -> Result<Vec<Vec<f32>>, EvalError> {
    evaluate_with(graph, &EvalOptions::default())
}

/// Evaluates a graph, returning one f32 buffer per designated output.
///
/// # Errors
///
/// Propagates ISA-interpreter faults (see [`EvalError`]).
pub fn evaluate_with(graph: &Graph, options: &EvalOptions) -> Result<Vec<Vec<f32>>, EvalError> {
    let mut ev = Evaluator {
        graph,
        options: *options,
        values: vec![None; graph.nodes().len()],
        param_ordinals: param_ordinals(graph),
    };
    // Evaluate only what the outputs need (dead nodes may be arbitrarily
    // expensive; the frontend deliberately plants them).
    let mut live = vec![false; graph.nodes().len()];
    let mut stack: Vec<OpId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id.index()], true) {
            continue;
        }
        stack.extend(graph.node(id).op.operands());
    }
    for node in graph.nodes() {
        if live[node.id.index()] {
            let v = ev.eval_node(node)?;
            ev.values[node.id.index()] = Some(v);
        }
    }
    Ok(graph
        .outputs()
        .iter()
        .map(|&o| ev.values[o.index()].clone().expect("outputs are live"))
        .collect())
}

/// Compares two output sets elementwise under a relative tolerance,
/// returning the worst divergence if any element (or the output/element
/// counts themselves) disagree.
pub fn outputs_divergence(
    lhs: &[Vec<f32>],
    rhs: &[Vec<f32>],
    tolerance: f32,
) -> Option<Divergence> {
    if lhs.len() != rhs.len() {
        return Some(Divergence {
            output: lhs.len().min(rhs.len()),
            index: 0,
            lhs: lhs.len() as f32,
            rhs: rhs.len() as f32,
        });
    }
    let mut worst: Option<(f32, Divergence)> = None;
    for (o, (a, b)) in lhs.iter().zip(rhs).enumerate() {
        if a.len() != b.len() {
            return Some(Divergence {
                output: o,
                index: a.len().min(b.len()),
                lhs: a.len() as f32,
                rhs: b.len() as f32,
            });
        }
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let scale = 1.0 + x.abs().max(y.abs());
            let err = (x - y).abs() / scale;
            if err > tolerance && worst.as_ref().is_none_or(|(w, _)| err > *w) {
                worst = Some((
                    err,
                    Divergence {
                        output: o,
                        index: i,
                        lhs: x,
                        rhs: y,
                    },
                ));
            }
        }
    }
    worst.map(|(_, d)| d)
}

/// Ordinal of each parameter node among the graph's parameters
/// (indexed by `OpId::index`; non-parameters get `usize::MAX`).
fn param_ordinals(graph: &Graph) -> Vec<usize> {
    let mut ordinals = vec![usize::MAX; graph.nodes().len()];
    let mut next = 0usize;
    for n in graph.nodes() {
        if matches!(n.op, HloOp::Parameter) {
            ordinals[n.id.index()] = next;
            next += 1;
        }
    }
    ordinals
}

/// SplitMix64: the repo-standard cheap deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to [-1, 1).
fn unit(h: u64) -> f32 {
    ((h >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
}

/// Element `i` of parameter number `ordinal`.
fn param_value(ordinal: usize, i: u64) -> f32 {
    unit(splitmix64(((ordinal as u64) << 48) ^ i))
}

/// Element `i` of *any* constant (see the module docs for why this must
/// not depend on the node).
fn const_value(i: u64) -> f32 {
    // Scaled down so deep dot chains don't overflow f32 range.
    unit(splitmix64(0xC0FF_EE00 ^ i)) * 0.25
}

struct Evaluator<'g> {
    graph: &'g Graph,
    options: EvalOptions,
    values: Vec<Option<Vec<f32>>>,
    param_ordinals: Vec<usize>,
}

impl Evaluator<'_> {
    fn value(&self, id: OpId) -> &[f32] {
        self.values[id.index()]
            .as_deref()
            .expect("operand evaluated")
    }

    fn eval_node(&mut self, node: &Node) -> Result<Vec<f32>, EvalError> {
        let elements = node.shape.elements();
        Ok(match node.op {
            HloOp::Parameter => {
                let ordinal = self.param_ordinals[node.id.index()];
                (0..elements).map(|i| param_value(ordinal, i)).collect()
            }
            HloOp::Constant => (0..elements).map(const_value).collect(),
            HloOp::Dot { lhs, rhs } => {
                let k = self.graph.node(rhs).shape.leading() as usize;
                let n = self.graph.node(rhs).shape.trailing() as usize;
                let rows = self.value(lhs).len() / k;
                matmul(self.value(lhs), self.value(rhs), rows, k, n, &self.options)?
            }
            HloOp::BatchMatmul {
                a,
                b,
                batch,
                m,
                k,
                n,
                ..
            } => {
                let (batch, m, k, n) = (batch as usize, m as usize, k as usize, n as usize);
                let (va, vb) = (self.value(a).to_vec(), self.value(b).to_vec());
                let mut out = Vec::with_capacity(batch * m * n);
                for bi in 0..batch {
                    out.extend(matmul(
                        &va[bi * m * k..(bi + 1) * m * k],
                        &vb[bi * k * n..(bi + 1) * k * n],
                        m,
                        k,
                        n,
                        &self.options,
                    )?);
                }
                out
            }
            HloOp::Conv2d {
                input,
                kernel,
                stride,
            } => self.eval_conv2d(input, kernel, stride.max(1)),
            HloOp::Activate { input, act } => {
                let mut v = self.value(input).to_vec();
                act.apply_slice(&mut v);
                v
            }
            HloOp::Binary { a, b, kind } => {
                let va = self.value(a);
                let vb = self.value(b);
                va.iter()
                    .zip(vb)
                    .map(|(&x, &y)| match kind {
                        BinaryKind::Add => x + y,
                        BinaryKind::Mul => x * y,
                        BinaryKind::Max => x.max(y),
                    })
                    .collect()
            }
            HloOp::Softmax { input } => {
                let v = self.value(input);
                let row = self.graph.node(input).shape.trailing() as usize;
                v.chunks(row).flat_map(activation::softmax).collect()
            }
            HloOp::LayerNorm { input } => {
                let v = self.value(input);
                let row = self.graph.node(input).shape.trailing() as usize;
                let gamma = vec![1.0f32; row];
                let beta = vec![0.0f32; row];
                v.chunks(row)
                    .flat_map(|r| activation::layer_norm(r, &gamma, &beta, 1e-5))
                    .collect()
            }
            HloOp::Embedding { table, batch, seq } => {
                let t = self.value(table);
                let vocab = self.graph.node(table).shape.leading();
                let dim = self.graph.node(table).shape.trailing() as usize;
                let mut out = Vec::with_capacity((batch * seq) as usize * dim);
                for pos in 0..batch * seq {
                    // Synthetic token ids: deterministic in the position.
                    let id = (splitmix64(0x1D5 ^ pos) % vocab) as usize;
                    out.extend_from_slice(&t[id * dim..(id + 1) * dim]);
                }
                out
            }
            HloOp::MaxPool2d { input, window } => self.eval_max_pool(input, window.max(1)),
            HloOp::Reshape { input } => self.value(input).to_vec(),
            HloOp::GateReduce { input, factor } => {
                let factor = factor.max(1) as usize;
                self.value(input)
                    .chunks(factor)
                    .map(|gates| gates.iter().sum())
                    .collect()
            }
        })
    }

    /// NHWC conv with TF-style "same" padding: `out = ceil(in/stride)`,
    /// total pad `max((out-1)*stride + k - in, 0)`, split low-side-first.
    fn eval_conv2d(&self, input: OpId, kernel: OpId, stride: u64) -> Vec<f32> {
        let is = &self.graph.node(input).shape;
        let ks = &self.graph.node(kernel).shape;
        let (n, h, w, cin) = (
            is.dims()[0] as usize,
            is.dims()[1] as usize,
            is.dims()[2] as usize,
            is.dims()[3] as usize,
        );
        let (kh, kw, cout) = (
            ks.dims()[0] as usize,
            ks.dims()[1] as usize,
            ks.dims()[3] as usize,
        );
        let stride = stride as usize;
        let (oh, ow) = (h.div_ceil(stride), w.div_ceil(stride));
        let pad_h = ((oh - 1) * stride + kh).saturating_sub(h) / 2;
        let pad_w = ((ow - 1) * stride + kw).saturating_sub(w) / 2;
        let x = self.value(input);
        let f = self.value(kernel);
        let mut out = vec![0.0f32; n * oh * ow * cout];
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for co in 0..cout {
                        let mut acc = 0.0f32;
                        for ky in 0..kh {
                            let iy = (oy * stride + ky).wrapping_sub(pad_h);
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx).wrapping_sub(pad_w);
                                if ix >= w {
                                    continue;
                                }
                                for ci in 0..cin {
                                    acc += x[((b * h + iy) * w + ix) * cin + ci]
                                        * f[((ky * kw + kx) * cin + ci) * cout + co];
                                }
                            }
                        }
                        out[((b * oh + oy) * ow + ox) * cout + co] = acc;
                    }
                }
            }
        }
        out
    }

    /// Max pooling with window == stride and ceil ("same"-ish) edges:
    /// windows clip at the input boundary.
    fn eval_max_pool(&self, input: OpId, window: u64) -> Vec<f32> {
        let is = &self.graph.node(input).shape;
        let (n, h, w, c) = (
            is.dims()[0] as usize,
            is.dims()[1] as usize,
            is.dims()[2] as usize,
            is.dims()[3] as usize,
        );
        let window = window as usize;
        let (oh, ow) = (h.div_ceil(window), w.div_ceil(window));
        let x = self.value(input);
        let mut out = vec![f32::NEG_INFINITY; n * oh * ow * c];
        for b in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for ch in 0..c {
                        let mut m = f32::NEG_INFINITY;
                        for iy in (oy * window)..((oy + 1) * window).min(h) {
                            for ix in (ox * window)..((ox + 1) * window).min(w) {
                                m = m.max(x[((b * h + iy) * w + ix) * c + ch]);
                            }
                        }
                        out[((b * oh + oy) * ow + ox) * c + ch] = m;
                    }
                }
            }
        }
        out
    }
}

/// `[rows, k] @ [k, n]`, MXU-backed under the flop budget.
fn matmul(
    acts: &[f32],
    weights: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    options: &EvalOptions,
) -> Result<Vec<f32>, EvalError> {
    let flops = 2 * (rows * k * n) as u64;
    if flops <= options.mxu_flop_budget {
        matmul_mxu(acts, weights, rows, k, n)
    } else {
        Ok(matmul_plain(acts, weights, rows, k, n))
    }
}

fn matmul_plain(acts: &[f32], weights: &[f32], rows: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * n];
    for r in 0..rows {
        for kk in 0..k {
            let a = acts[r * k + kk];
            for c in 0..n {
                out[r * n + c] += a * weights[kk * n + c];
            }
        }
    }
    out
}

/// Runs the matmul on the `tpu-isa` functional interpreter: zero-padded
/// to the MXU dimension and tiled as `PushWeights` (d x d weight tile),
/// `MatMul` (all rows against it), `PopResults`, with the k-tile
/// partials accumulated host-side — the same dataflow `lower.rs`
/// schedules, executed at instruction level.
fn matmul_mxu(
    acts: &[f32],
    weights: &[f32],
    rows: usize,
    k: usize,
    n: usize,
) -> Result<Vec<f32>, EvalError> {
    const D: usize = 8;
    let kt = k.div_ceil(D);
    let nt = n.div_ceil(D);
    // VMEM layout: weight tile at 0, activation rows at D*D, results
    // after them. Rows are chunked so everything fits comfortably.
    let max_rows = 2048usize;
    let mut m = Interpreter::new(InterpConfig {
        mxu_dim: D,
        vmem_words: D * D + 2 * max_rows * D,
        ..InterpConfig::default()
    });
    let mut out = vec![0.0f32; rows * n];
    let mut chunk_programs: Vec<(usize, tpu_isa::Program)> = Vec::new();
    for row0 in (0..rows).step_by(max_rows) {
        let nrows = (rows - row0).min(max_rows);
        let program = match chunk_programs.iter().find(|(r, _)| *r == nrows) {
            Some((_, p)) => p.clone(),
            None => {
                let src = format!(
                    "s.li s12, 0\n\
                     s.li s13, {acts_base}\n\
                     s.li s14, {out_base}\n\
                     m.push 0\n\
                     m.mm 0, {nrows}\n\
                     m.pop 0\n\
                     s.halt",
                    acts_base = D * D,
                    out_base = D * D + max_rows * D,
                );
                let p = assemble(&src, Generation::TpuV4i).expect("fixed template assembles");
                chunk_programs.push((nrows, p.clone()));
                p
            }
        };
        for ti in 0..kt {
            // Activation tile: nrows x D slice of columns [ti*D, ti*D+D).
            let mut atile = vec![0.0f32; nrows * D];
            for r in 0..nrows {
                for kk in 0..D {
                    let col = ti * D + kk;
                    if col < k {
                        atile[r * D + kk] = acts[(row0 + r) * k + col];
                    }
                }
            }
            for tj in 0..nt {
                // Weight tile: D x D block at (ti*D, tj*D).
                let mut wtile = vec![0.0f32; D * D];
                for kk in 0..D {
                    let wr = ti * D + kk;
                    if wr >= k {
                        continue;
                    }
                    for c in 0..D {
                        let wc = tj * D + c;
                        if wc < n {
                            wtile[kk * D + c] = weights[wr * n + wc];
                        }
                    }
                }
                m.write_mem(tpu_arch::MemLevel::Vmem, 0, &wtile)?;
                m.write_mem(tpu_arch::MemLevel::Vmem, D * D, &atile)?;
                m.run(&program)?;
                let partial =
                    m.read_mem(tpu_arch::MemLevel::Vmem, D * D + max_rows * D, nrows * D)?;
                for r in 0..nrows {
                    for c in 0..D {
                        let col = tj * D + c;
                        if col < n {
                            out[(row0 + r) * n + col] += partial[r * D + c];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_numerics::activation::Activation;
    use tpu_numerics::DType;

    fn mlp() -> Graph {
        let mut g = Graph::new("mlp", DType::Bf16);
        let x = g.parameter(&[4, 32]).unwrap();
        let w1 = g.constant(&[32, 16]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.constant(&[16, 8]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn evaluation_is_deterministic() {
        let g = mlp();
        assert_eq!(evaluate(&g).unwrap(), evaluate(&g).unwrap());
    }

    #[test]
    fn mxu_route_matches_plain_loop() {
        let g = mlp();
        let on_mxu = evaluate_with(
            &g,
            &EvalOptions {
                mxu_flop_budget: u64::MAX,
            },
        )
        .unwrap();
        let plain = evaluate_with(&g, &EvalOptions { mxu_flop_budget: 0 }).unwrap();
        assert!(outputs_divergence(&on_mxu, &plain, 1e-4).is_none());
    }

    #[test]
    fn mxu_route_handles_unaligned_dims() {
        // k and n not multiples of the MXU dim exercise tile padding.
        let mut g = Graph::new("odd", DType::Bf16);
        let x = g.parameter(&[3, 13]).unwrap();
        let w = g.constant(&[13, 9]).unwrap();
        let y = g.dot(x, w).unwrap();
        g.mark_output(y);
        let on_mxu = evaluate_with(
            &g,
            &EvalOptions {
                mxu_flop_budget: u64::MAX,
            },
        )
        .unwrap();
        let plain = evaluate_with(&g, &EvalOptions { mxu_flop_budget: 0 }).unwrap();
        assert!(outputs_divergence(&on_mxu, &plain, 1e-4).is_none());
    }

    #[test]
    fn constants_are_a_function_of_linear_index_only() {
        // Two graphs, same constant size reached through different
        // shapes: a reshape of a constant evaluates identically to a
        // directly-declared constant (the fold pass's soundness).
        let mut a = Graph::new("a", DType::Bf16);
        let c = a.constant(&[64]).unwrap();
        let r = a.reshape(c, &[8, 8]).unwrap();
        a.mark_output(r);
        let mut b = Graph::new("b", DType::Bf16);
        let c2 = b.constant(&[8, 8]).unwrap();
        b.mark_output(c2);
        assert_eq!(evaluate(&a).unwrap(), evaluate(&b).unwrap());
    }

    #[test]
    fn parameters_differ_by_ordinal() {
        let mut g = Graph::new("p", DType::Bf16);
        let p0 = g.parameter(&[4, 4]).unwrap();
        let p1 = g.parameter(&[4, 4]).unwrap();
        g.mark_output(p0);
        g.mark_output(p1);
        let out = evaluate(&g).unwrap();
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn dead_nodes_are_not_evaluated() {
        // The dead branch is enormous; evaluation must skip it.
        let mut g = Graph::new("dead", DType::Bf16);
        let x = g.parameter(&[2, 8]).unwrap();
        let w = g.constant(&[8, 4]).unwrap();
        let y = g.dot(x, w).unwrap();
        let big = g.parameter(&[4096, 4096]).unwrap();
        let bw = g.constant(&[4096, 4096]).unwrap();
        let _dead = g.dot(big, bw).unwrap();
        g.mark_output(y);
        let out = evaluate(&g).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2 * 4);
    }

    #[test]
    fn every_op_kind_evaluates() {
        let mut g = Graph::new("allops", DType::Bf16);
        let img = g.parameter(&[1, 6, 6, 3]).unwrap();
        let k = g.constant(&[3, 3, 3, 4]).unwrap();
        let c = g.conv2d(img, k, 2).unwrap();
        let p = g.max_pool2d(c, 2).unwrap();
        let flat = g.reshape(p, &[1, 2 * 2 * 4]).unwrap();
        let table = g.constant(&[50, 16]).unwrap();
        let e = g.embedding(table, 1, 4).unwrap();
        let ef = g.reshape(e, &[1, 64]).unwrap();
        let w = g.constant(&[64, 16]).unwrap();
        let d = g.dot(ef, w).unwrap();
        let sm = g.softmax(d).unwrap();
        let ln = g.layer_norm(sm).unwrap();
        let gr = g.gate_reduce(ln, 4).unwrap();
        let act = g.activate(gr, Activation::Gelu).unwrap();
        let mixed = g.mul(act, flat).unwrap_err(); // shapes differ: 4 vs 16
        let _ = mixed;
        let b = g.batch_matmul(ln, ln, 1, 4, 4, 4).unwrap();
        let sum = g.add(act, act).unwrap();
        g.mark_output(sum);
        g.mark_output(b);
        g.mark_output(flat);
        let out = evaluate(&g).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn divergence_reports_worst_element() {
        let a = vec![vec![1.0f32, 2.0, 3.0]];
        let b = vec![vec![1.0f32, 2.5, 3.0]];
        let d = outputs_divergence(&a, &b, 1e-3).unwrap();
        assert_eq!(d.output, 0);
        assert_eq!(d.index, 1);
        assert!(outputs_divergence(&a, &a, 1e-6).is_none());
    }
}
