//! The compiler driver: options, passes, and the executable artifact.

use std::fmt;

use tpu_arch::{ChipConfig, Generation};
use tpu_isa::program::VerifyError;
use tpu_numerics::accum::AccumOrder;
use tpu_sim::plan::StepPlan;

use crate::fusion::{self, FusionMap};
use crate::graph::Graph;
use crate::lower::{self, Lowered};
use crate::memory::{self, MemoryPlan};
use crate::shape::ShapeError;

/// Optimization maturity levels, standing in for "XLA releases over
/// time" in the compiler-gains experiment (E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// Naive lowering: no fusion, no double buffering, no CMEM use.
    O0,
    /// Adds operator fusion.
    O1,
    /// Adds double-buffered weight streaming.
    O2,
    /// Adds CMEM weight placement (full pipeline; the default).
    O3,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

/// Knobs of the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// Fuse elementwise consumers into matrix producers.
    pub fusion: bool,
    /// Overlap weight-tile DMA with compute.
    pub double_buffer: bool,
    /// Place weights into CMEM when the chip has one.
    pub cmem: bool,
    /// Override the CMEM capacity (bytes) for the E6 sweep.
    pub cmem_budget_override: Option<u64>,
    /// Reproduce another generation's accumulation numerics bit-exactly
    /// (backwards ML compatibility, Lesson 4 / E14).
    pub bit_exact_with: Option<Generation>,
}

impl Default for CompilerOptions {
    fn default() -> CompilerOptions {
        CompilerOptions::level(OptLevel::O3)
    }
}

impl CompilerOptions {
    /// The options corresponding to an optimization maturity level.
    pub fn level(level: OptLevel) -> CompilerOptions {
        CompilerOptions {
            fusion: level >= OptLevel::O1,
            double_buffer: level >= OptLevel::O2,
            cmem: level >= OptLevel::O3,
            cmem_budget_override: None,
            bit_exact_with: None,
        }
    }

    /// Full pipeline but with CMEM disabled (useful on chips without one
    /// and as the E6 baseline).
    pub fn no_cmem() -> CompilerOptions {
        CompilerOptions {
            cmem: false,
            ..CompilerOptions::default()
        }
    }

    /// Full pipeline with an explicit CMEM budget in bytes (E6 sweep).
    pub fn with_cmem_budget(bytes: u64) -> CompilerOptions {
        CompilerOptions {
            cmem_budget_override: Some(bytes),
            ..CompilerOptions::default()
        }
    }
}

/// Error produced by compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The graph is malformed.
    Graph(ShapeError),
    /// The model's weights exceed the chip's HBM capacity — it cannot be
    /// resident at all (relevant to multi-tenancy, E11).
    WeightsExceedHbm {
        /// Weight bytes required.
        needed: u64,
        /// HBM bytes available.
        available: u64,
    },
    /// The emitted VLIW program failed verification (a compiler bug if it
    /// ever happens; surfaced rather than panicking).
    Program(VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "invalid graph: {e}"),
            CompileError::WeightsExceedHbm { needed, available } => {
                write!(f, "weights need {needed} bytes but HBM holds {available}")
            }
            CompileError::Program(e) => write!(f, "emitted program invalid: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ShapeError> for CompileError {
    fn from(e: ShapeError) -> CompileError {
        CompileError::Graph(e)
    }
}

/// A compiled model: step plan, VLIW program, memory plan and metadata.
#[derive(Debug, Clone)]
pub struct Executable {
    graph_name: String,
    chip_name: String,
    generation: Generation,
    plan: StepPlan,
    program: tpu_isa::Program,
    memory: MemoryPlan,
    fusion: FusionMap,
    options: CompilerOptions,
    weight_bytes: u64,
    flops: u64,
    mxu_dim: u32,
}

impl Executable {
    /// The simulator-ready step plan.
    pub fn plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The schematic VLIW program in the target's encoding.
    pub fn program(&self) -> &tpu_isa::Program {
        &self.program
    }

    /// The memory plan (CMEM residency, tile sizes).
    pub fn memory(&self) -> &MemoryPlan {
        &self.memory
    }

    /// The fusion decisions.
    pub fn fusion(&self) -> &FusionMap {
        &self.fusion
    }

    /// The options used.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Name of the compiled graph.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Name of the target chip.
    pub fn chip_name(&self) -> &str {
        &self.chip_name
    }

    /// Target generation.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Weight bytes at the compiled precision.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Graph operations per execution.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The fp32 accumulation order this executable's matmuls follow: the
    /// compat generation's order in bit-exact mode, else the chip's own.
    pub fn accum_order(&self) -> AccumOrder {
        match self.options.bit_exact_with {
            Some(Generation::TpuV1) => AccumOrder::systolic(256),
            Some(_) => AccumOrder::systolic(128),
            None => AccumOrder::systolic(self.mxu_dim as usize),
        }
    }

    /// Analytic latency estimate for this executable on a chip (see
    /// [`crate::cost`]): bounds the simulator without running it.
    pub fn cost_estimate(&self, chip: &ChipConfig) -> crate::cost::CostEstimate {
        crate::cost::estimate(&self.plan, chip)
    }

    /// Serializes the program in the target generation's binary format.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (none for verifier-clean programs).
    pub fn binary(&self) -> Result<Vec<u8>, tpu_isa::EncodeError> {
        tpu_isa::encode(&self.program)
    }
}

impl fmt::Display for Executable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executable `{}` for {}: {} steps, {} bundles, {:.1} MiB weights ({:.0}% in CMEM)",
            self.graph_name,
            self.chip_name,
            self.plan.len(),
            self.program.len(),
            self.weight_bytes as f64 / (1 << 20) as f64,
            self.memory.cmem_fraction() * 100.0
        )
    }
}

/// Compiles a graph for a chip: fusion → memory planning → lowering →
/// program verification.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed graphs, weights that exceed
/// HBM, or (never, absent bugs) invalid emitted programs.
pub fn compile(
    graph: &Graph,
    chip: &ChipConfig,
    options: &CompilerOptions,
) -> Result<Executable, CompileError> {
    graph.validate()?;

    let weight_bytes = graph.weight_bytes();
    if weight_bytes > chip.hbm.capacity_bytes {
        return Err(CompileError::WeightsExceedHbm {
            needed: weight_bytes,
            available: chip.hbm.capacity_bytes,
        });
    }

    let fusion = if options.fusion {
        fusion::fuse(graph)
    } else {
        FusionMap::default()
    };
    let memory = memory::plan(graph, chip, options.cmem_budget_override);
    let Lowered {
        plan,
        program,
        accum_emulated: _,
    } = lower::lower(graph, chip, &fusion, &memory, options);

    program.verify().map_err(CompileError::Program)?;

    Ok(Executable {
        graph_name: graph.name().to_owned(),
        chip_name: chip.name.clone(),
        generation: chip.generation,
        plan,
        program,
        memory,
        fusion,
        options: options.clone(),
        weight_bytes,
        flops: graph.flops(),
        mxu_dim: chip.mxu_dim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_numerics::DType;
    use tpu_sim::Simulator;

    fn mlp(batch: u64) -> Graph {
        let mut g = Graph::new("mlp", DType::Bf16);
        let x = g.parameter(&[batch, 2048]).unwrap();
        let w1 = g.constant(&[2048, 4096]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.constant(&[4096, 1024]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn compile_and_simulate_every_generation() {
        let g = mlp(32);
        for chip in catalog::all_chips() {
            let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
            let r = Simulator::new(chip.clone()).run(exe.plan()).unwrap();
            assert!(r.seconds > 0.0, "{}", chip.name);
            assert!(r.flops > 0);
            // One source graph, one compiler, every target: Lesson 2.
            assert_eq!(exe.generation(), chip.generation);
            exe.binary().unwrap();
        }
    }

    #[test]
    fn opt_levels_monotonically_improve_v4i_latency() {
        let g = mlp(16);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let mut last = f64::INFINITY;
        for level in OptLevel::ALL {
            let exe = compile(&g, &chip, &CompilerOptions::level(level)).unwrap();
            let t = sim.run(exe.plan()).unwrap().seconds;
            assert!(
                t <= last * 1.001,
                "level {level:?} regressed: {t} vs {last}"
            );
            last = t;
        }
    }

    #[test]
    fn cmem_speeds_up_weight_bound_models() {
        // Small batch → weight streaming dominates → CMEM is a big win.
        let g = mlp(4);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let with = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let without = compile(&g, &chip, &CompilerOptions::no_cmem()).unwrap();
        let t_with = sim.run(with.plan()).unwrap().seconds;
        let t_without = sim.run(without.plan()).unwrap().seconds;
        // The MXU's own weight-push rate floors the gain (weights still
        // stream through the array), so the win is bounded; the paper's
        // per-app CMEM gains are likewise workload-dependent.
        assert!(
            t_with < 0.75 * t_without,
            "CMEM should speed up weight-bound serving: {t_with} vs {t_without}"
        );
    }

    #[test]
    fn weights_exceeding_hbm_fail_to_compile() {
        // ~17 GiB of bf16 weights vs TPUv4i's 8 GiB HBM.
        let mut g = Graph::new("huge", DType::Bf16);
        let x = g.parameter(&[1, 65536]).unwrap();
        let w = g.constant(&[65536, 140000]).unwrap();
        let y = g.dot(x, w).unwrap();
        g.mark_output(y);
        let err = compile(&g, &catalog::tpu_v4i(), &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::WeightsExceedHbm { .. }));
        // But it fits on TPUv3's 32 GiB.
        assert!(compile(&g, &catalog::tpu_v3(), &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn bit_exact_mode_sets_order_and_costs_time() {
        let g = mlp(64);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let native = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let opts = CompilerOptions {
            bit_exact_with: Some(Generation::TpuV1),
            ..CompilerOptions::default()
        };
        let compat = compile(&g, &chip, &opts).unwrap();
        assert_eq!(native.accum_order(), AccumOrder::systolic(128));
        assert_eq!(compat.accum_order(), AccumOrder::systolic(256));
        let t_native = sim.run(native.plan()).unwrap().seconds;
        let t_compat = sim.run(compat.plan()).unwrap().seconds;
        assert!(t_compat > t_native, "emulation must cost time");
        // v3 compat is free on v4i (same 128-wide order).
        let v3opts = CompilerOptions {
            bit_exact_with: Some(Generation::TpuV3),
            ..CompilerOptions::default()
        };
        let v3compat = compile(&g, &chip, &v3opts).unwrap();
        let t_v3 = sim.run(v3compat.plan()).unwrap().seconds;
        assert!((t_v3 - t_native).abs() / t_native < 1e-9);
    }

    #[test]
    fn cmem_budget_sweep_is_monotone() {
        let g = mlp(4);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let mut last = f64::INFINITY;
        for mib in [0u64, 8, 16, 32, 64, 128] {
            let exe = compile(&g, &chip, &CompilerOptions::with_cmem_budget(mib << 20)).unwrap();
            let t = sim.run(exe.plan()).unwrap().seconds;
            assert!(
                t <= last * 1.001,
                "more CMEM must not slow things down ({mib} MiB: {t} vs {last})"
            );
            last = t;
        }
    }

    #[test]
    fn executable_accessors_and_display() {
        let g = mlp(8);
        let chip = catalog::tpu_v4i();
        let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        assert_eq!(exe.graph_name(), "mlp");
        assert_eq!(exe.chip_name(), "TPUv4i");
        assert_eq!(exe.weight_bytes(), g.weight_bytes());
        assert_eq!(exe.flops(), g.flops());
        assert!(exe.memory().cmem_fraction() > 0.99);
        assert!(exe.fusion().fused_count() > 0);
        let s = format!("{exe}");
        assert!(s.contains("mlp") && s.contains("TPUv4i"));
    }

    #[test]
    fn error_display() {
        let e = CompileError::WeightsExceedHbm {
            needed: 10,
            available: 5,
        };
        assert!(format!("{e}").contains("HBM"));
    }
}
