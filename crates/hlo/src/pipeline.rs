//! The compiler driver: options, passes, and the executable artifact.

use std::fmt;

use tpu_arch::{ChipConfig, Generation};
use tpu_isa::program::VerifyError as IsaVerifyError;
use tpu_numerics::accum::AccumOrder;
use tpu_sim::plan::{StepKind, StepPlan};

use crate::fusion::FusionMap;
use crate::graph::Graph;
use crate::lower::{self, Lowered};
use crate::memory::{self, MemoryPlan};
use crate::passes::{self, PassError};
use crate::shape::ShapeError;
use crate::verify::{Verifier, VerifyError};

/// Optimization maturity levels, standing in for "XLA releases over
/// time" in the compiler-gains experiment (E7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// Naive lowering: no fusion, no double buffering, no CMEM use.
    O0,
    /// Adds operator fusion.
    O1,
    /// Adds double-buffered weight streaming.
    O2,
    /// Adds CMEM weight placement (full pipeline; the default).
    O3,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

/// Knobs of the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// Fuse elementwise consumers into matrix producers.
    pub fusion: bool,
    /// Overlap weight-tile DMA with compute.
    pub double_buffer: bool,
    /// Place weights into CMEM when the chip has one.
    pub cmem: bool,
    /// Fold `Reshape(Constant)` into `Constant` (re-enables CMEM
    /// placement for weights a frontend stored flattened).
    pub fold: bool,
    /// Remove dead code (frees CMEM budget squatted on by orphaned
    /// constants; parameters always survive).
    pub dce: bool,
    /// Apply algebraic identities (`relu∘relu`, no-op reshapes, ...).
    pub simplify: bool,
    /// Differentially test every pass rewrite against the reference
    /// evaluator during compilation. Expensive — executes the graph's
    /// actual math — so it is a testing/experiment knob, off by default.
    pub check_equivalence: bool,
    /// Override the CMEM capacity (bytes) for the E6 sweep.
    pub cmem_budget_override: Option<u64>,
    /// Reproduce another generation's accumulation numerics bit-exactly
    /// (backwards ML compatibility, Lesson 4 / E14).
    pub bit_exact_with: Option<Generation>,
}

impl Default for CompilerOptions {
    fn default() -> CompilerOptions {
        CompilerOptions::level(OptLevel::O3)
    }
}

impl CompilerOptions {
    /// The options corresponding to an optimization maturity level.
    pub fn level(level: OptLevel) -> CompilerOptions {
        CompilerOptions {
            fusion: level >= OptLevel::O1,
            double_buffer: level >= OptLevel::O2,
            fold: level >= OptLevel::O2,
            dce: level >= OptLevel::O2,
            simplify: level >= OptLevel::O2,
            cmem: level >= OptLevel::O3,
            check_equivalence: false,
            cmem_budget_override: None,
            bit_exact_with: None,
        }
    }

    /// The pipeline a chip's generation gets in production: each
    /// generation is served by the compiler maturity contemporary with
    /// it, which is how E26 replays Lesson 2 (*compiler compatibility
    /// trumps binary compatibility*) — the same source graph recompiles
    /// into a different, better program on each generation.
    pub fn for_chip(chip: &ChipConfig) -> CompilerOptions {
        CompilerOptions::level(match chip.generation {
            Generation::TpuV1 => OptLevel::O0,
            Generation::TpuV2 => OptLevel::O1,
            Generation::TpuV3 => OptLevel::O2,
            // The GPU comparison point and any future generation get
            // the contemporary (full) pipeline.
            _ => OptLevel::O3,
        })
    }

    /// Full pipeline but with CMEM disabled (useful on chips without one
    /// and as the E6 baseline).
    pub fn no_cmem() -> CompilerOptions {
        CompilerOptions {
            cmem: false,
            ..CompilerOptions::default()
        }
    }

    /// Full pipeline with an explicit CMEM budget in bytes (E6 sweep).
    pub fn with_cmem_budget(bytes: u64) -> CompilerOptions {
        CompilerOptions {
            cmem_budget_override: Some(bytes),
            ..CompilerOptions::default()
        }
    }
}

/// Error produced by compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The graph is malformed (builder-level shape error).
    Graph(ShapeError),
    /// The graph, memory plan or fusion map failed structural
    /// verification (see [`crate::verify`]).
    Verify(VerifyError),
    /// An optimizing pass broke an invariant (see [`crate::passes`]).
    Pass(PassError),
    /// The model's weights exceed the chip's HBM capacity — it cannot be
    /// resident at all (relevant to multi-tenancy, E11).
    WeightsExceedHbm {
        /// Weight bytes required.
        needed: u64,
        /// HBM bytes available.
        available: u64,
    },
    /// The lowered plan's MXU work disagrees with the cost model: the
    /// step plan must bill exactly the live matrix flops of the graph it
    /// was lowered from (a compiler bug if it ever fires).
    CostModel {
        /// MXU flops summed over the step plan.
        planned: u64,
        /// Matrix flops of the live graph nodes.
        expected: u64,
    },
    /// The emitted VLIW program failed verification (a compiler bug if it
    /// ever happens; surfaced rather than panicking).
    Program(IsaVerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "invalid graph: {e}"),
            CompileError::Verify(e) => write!(f, "verification failed: {e}"),
            CompileError::Pass(e) => write!(f, "optimization failed: {e}"),
            CompileError::WeightsExceedHbm { needed, available } => {
                write!(f, "weights need {needed} bytes but HBM holds {available}")
            }
            CompileError::CostModel { planned, expected } => {
                write!(
                    f,
                    "plan bills {planned} MXU flops but the graph's live matrix ops need {expected}"
                )
            }
            CompileError::Program(e) => write!(f, "emitted program invalid: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ShapeError> for CompileError {
    fn from(e: ShapeError) -> CompileError {
        CompileError::Graph(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> CompileError {
        CompileError::Verify(e)
    }
}

impl From<PassError> for CompileError {
    fn from(e: PassError) -> CompileError {
        CompileError::Pass(e)
    }
}

/// What the optimizing pipeline did during a compile, kept on the
/// [`Executable`] for experiment reporting (E26).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassSummary {
    /// Names of passes that rewrote the graph, in application order.
    pub applied: Vec<&'static str>,
    /// Fixpoint sweeps executed.
    pub sweeps: usize,
    /// Graph nodes before optimization.
    pub nodes_before: usize,
    /// Graph nodes after optimization.
    pub nodes_after: usize,
}

/// A compiled model: step plan, VLIW program, memory plan and metadata.
#[derive(Debug, Clone)]
pub struct Executable {
    graph_name: String,
    chip_name: String,
    generation: Generation,
    plan: StepPlan,
    program: tpu_isa::Program,
    memory: MemoryPlan,
    fusion: FusionMap,
    options: CompilerOptions,
    pass_summary: PassSummary,
    weight_bytes: u64,
    flops: u64,
    mxu_dim: u32,
}

impl Executable {
    /// The simulator-ready step plan.
    pub fn plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The schematic VLIW program in the target's encoding.
    pub fn program(&self) -> &tpu_isa::Program {
        &self.program
    }

    /// The memory plan (CMEM residency, tile sizes).
    pub fn memory(&self) -> &MemoryPlan {
        &self.memory
    }

    /// The fusion decisions.
    pub fn fusion(&self) -> &FusionMap {
        &self.fusion
    }

    /// The options used.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// What the optimizing pipeline did (passes applied, node deltas).
    pub fn pass_summary(&self) -> &PassSummary {
        &self.pass_summary
    }

    /// Name of the compiled graph.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Name of the target chip.
    pub fn chip_name(&self) -> &str {
        &self.chip_name
    }

    /// Target generation.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Weight bytes at the compiled precision.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// Graph operations per execution.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// The fp32 accumulation order this executable's matmuls follow: the
    /// compat generation's order in bit-exact mode, else the chip's own.
    pub fn accum_order(&self) -> AccumOrder {
        match self.options.bit_exact_with {
            Some(Generation::TpuV1) => AccumOrder::systolic(256),
            Some(_) => AccumOrder::systolic(128),
            None => AccumOrder::systolic(self.mxu_dim as usize),
        }
    }

    /// Analytic latency estimate for this executable on a chip (see
    /// [`crate::cost`]): bounds the simulator without running it.
    pub fn cost_estimate(&self, chip: &ChipConfig) -> crate::cost::CostEstimate {
        crate::cost::estimate(&self.plan, chip)
    }

    /// Serializes the program in the target generation's binary format.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (none for verifier-clean programs).
    pub fn binary(&self) -> Result<Vec<u8>, tpu_isa::EncodeError> {
        tpu_isa::encode(&self.program)
    }
}

impl fmt::Display for Executable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executable `{}` for {}: {} steps, {} bundles, {:.1} MiB weights ({:.0}% in CMEM)",
            self.graph_name,
            self.chip_name,
            self.plan.len(),
            self.program.len(),
            self.weight_bytes as f64 / (1 << 20) as f64,
            self.memory.cmem_fraction() * 100.0
        )
    }
}

/// Compiles a graph for a chip: verification → optimizing passes →
/// memory planning → lowering → cost-model cross-check → program
/// verification. Every analysis the backend consumes (the fusion map,
/// the memory plan) is re-verified against the graph it describes
/// before lowering sees it.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed or unverifiable graphs,
/// pass-invariant violations, weights that exceed HBM, cost-model
/// disagreements, or (never, absent bugs) invalid emitted programs.
pub fn compile(
    graph: &Graph,
    chip: &ChipConfig,
    options: &CompilerOptions,
) -> Result<Executable, CompileError> {
    graph.validate()?;
    let verifier = Verifier::new();
    verifier.verify_graph(graph)?;

    // Optimizing passes, each gated by the verifier (and optionally by
    // interpreter-backed differential testing). The manager re-verifies
    // the fusion analysis against the final graph.
    let mut manager = passes::pipeline_for(options);
    if options.check_equivalence {
        manager = manager.check_equivalence(1e-3);
    }
    let report = manager.run(graph)?;
    let optimized = report.graph;
    let fusion: FusionMap = report.fusion;

    let weight_bytes = optimized.weight_bytes();
    if weight_bytes > chip.hbm.capacity_bytes {
        return Err(CompileError::WeightsExceedHbm {
            needed: weight_bytes,
            available: chip.hbm.capacity_bytes,
        });
    }

    // With CMEM disabled the plan's budget is zero, so the recorded
    // residency matches what lowering will actually use.
    let cmem_budget = if options.cmem {
        options
            .cmem_budget_override
            .unwrap_or_else(|| chip.cmem.map_or(0, |c| c.capacity_bytes))
    } else {
        0
    };
    let memory = memory::plan(&optimized, chip, Some(cmem_budget));
    verifier.verify_memory(&optimized, &memory, cmem_budget)?;

    let Lowered {
        plan,
        program,
        accum_emulated: _,
    } = lower::lower(&optimized, chip, &fusion, &memory, options);

    // Cost-model invariant: the plan must bill exactly the matrix work
    // of the live graph — no silently dropped or duplicated tiles.
    let planned: u64 = plan
        .steps()
        .iter()
        .filter(|s| matches!(s.kind, StepKind::Mxu { .. }))
        .map(|s| s.kind.flops())
        .sum();
    let (expected, _) = passes::live_flops(&optimized);
    if planned != expected {
        return Err(CompileError::CostModel { planned, expected });
    }

    program.verify().map_err(CompileError::Program)?;

    Ok(Executable {
        graph_name: optimized.name().to_owned(),
        chip_name: chip.name.clone(),
        generation: chip.generation,
        plan,
        program,
        memory,
        fusion,
        options: options.clone(),
        pass_summary: PassSummary {
            applied: report.applied,
            sweeps: report.sweeps,
            nodes_before: report.nodes_before,
            nodes_after: report.nodes_after,
        },
        weight_bytes,
        flops: optimized.flops(),
        mxu_dim: chip.mxu_dim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;
    use tpu_numerics::DType;
    use tpu_sim::Simulator;

    fn mlp(batch: u64) -> Graph {
        let mut g = Graph::new("mlp", DType::Bf16);
        let x = g.parameter(&[batch, 2048]).unwrap();
        let w1 = g.constant(&[2048, 4096]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let w2 = g.constant(&[4096, 1024]).unwrap();
        let y = g.dot(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn compile_and_simulate_every_generation() {
        let g = mlp(32);
        for chip in catalog::all_chips() {
            let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
            let r = Simulator::new(chip.clone()).run(exe.plan()).unwrap();
            assert!(r.seconds > 0.0, "{}", chip.name);
            assert!(r.flops > 0);
            // One source graph, one compiler, every target: Lesson 2.
            assert_eq!(exe.generation(), chip.generation);
            exe.binary().unwrap();
        }
    }

    #[test]
    fn opt_levels_monotonically_improve_v4i_latency() {
        let g = mlp(16);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let mut last = f64::INFINITY;
        for level in OptLevel::ALL {
            let exe = compile(&g, &chip, &CompilerOptions::level(level)).unwrap();
            let t = sim.run(exe.plan()).unwrap().seconds;
            assert!(
                t <= last * 1.001,
                "level {level:?} regressed: {t} vs {last}"
            );
            last = t;
        }
    }

    #[test]
    fn cmem_speeds_up_weight_bound_models() {
        // Small batch → weight streaming dominates → CMEM is a big win.
        let g = mlp(4);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let with = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let without = compile(&g, &chip, &CompilerOptions::no_cmem()).unwrap();
        let t_with = sim.run(with.plan()).unwrap().seconds;
        let t_without = sim.run(without.plan()).unwrap().seconds;
        // The MXU's own weight-push rate floors the gain (weights still
        // stream through the array), so the win is bounded; the paper's
        // per-app CMEM gains are likewise workload-dependent.
        assert!(
            t_with < 0.75 * t_without,
            "CMEM should speed up weight-bound serving: {t_with} vs {t_without}"
        );
    }

    #[test]
    fn weights_exceeding_hbm_fail_to_compile() {
        // ~17 GiB of bf16 weights vs TPUv4i's 8 GiB HBM.
        let mut g = Graph::new("huge", DType::Bf16);
        let x = g.parameter(&[1, 65536]).unwrap();
        let w = g.constant(&[65536, 140000]).unwrap();
        let y = g.dot(x, w).unwrap();
        g.mark_output(y);
        let err = compile(&g, &catalog::tpu_v4i(), &CompilerOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::WeightsExceedHbm { .. }));
        // But it fits on TPUv3's 32 GiB.
        assert!(compile(&g, &catalog::tpu_v3(), &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn bit_exact_mode_sets_order_and_costs_time() {
        let g = mlp(64);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let native = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let opts = CompilerOptions {
            bit_exact_with: Some(Generation::TpuV1),
            ..CompilerOptions::default()
        };
        let compat = compile(&g, &chip, &opts).unwrap();
        assert_eq!(native.accum_order(), AccumOrder::systolic(128));
        assert_eq!(compat.accum_order(), AccumOrder::systolic(256));
        let t_native = sim.run(native.plan()).unwrap().seconds;
        let t_compat = sim.run(compat.plan()).unwrap().seconds;
        assert!(t_compat > t_native, "emulation must cost time");
        // v3 compat is free on v4i (same 128-wide order).
        let v3opts = CompilerOptions {
            bit_exact_with: Some(Generation::TpuV3),
            ..CompilerOptions::default()
        };
        let v3compat = compile(&g, &chip, &v3opts).unwrap();
        let t_v3 = sim.run(v3compat.plan()).unwrap().seconds;
        assert!((t_v3 - t_native).abs() / t_native < 1e-9);
    }

    #[test]
    fn cmem_budget_sweep_is_monotone() {
        let g = mlp(4);
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let mut last = f64::INFINITY;
        for mib in [0u64, 8, 16, 32, 64, 128] {
            let exe = compile(&g, &chip, &CompilerOptions::with_cmem_budget(mib << 20)).unwrap();
            let t = sim.run(exe.plan()).unwrap().seconds;
            assert!(
                t <= last * 1.001,
                "more CMEM must not slow things down ({mib} MiB: {t} vs {last})"
            );
            last = t;
        }
    }

    #[test]
    fn executable_accessors_and_display() {
        let g = mlp(8);
        let chip = catalog::tpu_v4i();
        let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        assert_eq!(exe.graph_name(), "mlp");
        assert_eq!(exe.chip_name(), "TPUv4i");
        assert_eq!(exe.weight_bytes(), g.weight_bytes());
        assert_eq!(exe.flops(), g.flops());
        assert!(exe.memory().cmem_fraction() > 0.99);
        assert!(exe.fusion().fused_count() > 0);
        let s = format!("{exe}");
        assert!(s.contains("mlp") && s.contains("TPUv4i"));
    }

    fn dirty_mlp(batch: u64) -> Graph {
        // Same math as `mlp`, but with the weights stored flattened
        // behind reshapes, a duplicate relu, and a dead constant — the
        // shape a naive frontend emits.
        let mut g = Graph::new("mlp-dirty", DType::Bf16);
        let x = g.parameter(&[batch, 2048]).unwrap();
        let w1f = g.constant(&[2048 * 4096]).unwrap();
        let w1 = g.reshape(w1f, &[2048, 4096]).unwrap();
        let h = g.dot(x, w1).unwrap();
        let h = g.relu(h).unwrap();
        let h = g.relu(h).unwrap();
        let w2f = g.constant(&[4096 * 1024]).unwrap();
        let w2 = g.reshape(w2f, &[4096, 1024]).unwrap();
        let y = g.dot(h, w2).unwrap();
        let _dead = g.constant(&[1024, 1024]).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn for_chip_matches_generation_maturity() {
        assert_eq!(
            CompilerOptions::for_chip(&catalog::tpu_v1()),
            CompilerOptions::level(OptLevel::O0)
        );
        assert_eq!(
            CompilerOptions::for_chip(&catalog::tpu_v2()),
            CompilerOptions::level(OptLevel::O1)
        );
        assert_eq!(
            CompilerOptions::for_chip(&catalog::tpu_v3()),
            CompilerOptions::level(OptLevel::O2)
        );
        assert_eq!(
            CompilerOptions::for_chip(&catalog::tpu_v4i()),
            CompilerOptions::level(OptLevel::O3)
        );
    }

    #[test]
    fn passes_recover_cmem_placement_for_dirty_graphs() {
        // O0 leaves the reshaped weights streaming from HBM; O3 folds
        // them back into constants the CMEM knapsack can place, and
        // collects the dead constant squatting on the budget.
        let g = dirty_mlp(4);
        let chip = catalog::tpu_v4i();
        let naive = compile(&g, &chip, &CompilerOptions::level(OptLevel::O0)).unwrap();
        let opt = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        assert_eq!(naive.memory().cmem_fraction(), 0.0);
        assert!(opt.memory().cmem_fraction() > 0.99);
        assert!(opt.weight_bytes() < naive.weight_bytes());
        assert_eq!(opt.pass_summary().nodes_after, 6);
        assert!(opt.pass_summary().applied.contains(&"constant-fold"));

        let sim = Simulator::new(chip);
        let t_naive = sim.run(naive.plan()).unwrap().seconds;
        let t_opt = sim.run(opt.plan()).unwrap().seconds;
        assert!(
            t_opt < 0.75 * t_naive,
            "optimization should pay on dirty graphs: {t_opt} vs {t_naive}"
        );
    }

    #[test]
    fn compile_with_equivalence_checking_succeeds() {
        let g = dirty_mlp(1);
        let opts = CompilerOptions {
            check_equivalence: true,
            ..CompilerOptions::default()
        };
        let exe = compile(&g, &catalog::tpu_v4i(), &opts).unwrap();
        assert!(!exe.pass_summary().applied.is_empty());
    }

    #[test]
    fn compile_rejects_hand_assembled_garbage() {
        // A dangling output id gets past no verifier.
        let g = mlp(4);
        let (name, dtype, nodes, _) = g.into_parts();
        let bad = Graph::from_parts(&name, dtype, nodes, vec![crate::graph::OpId::from_raw(99)]);
        let err = compile(&bad, &catalog::tpu_v4i(), &CompilerOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CompileError::Verify(_) | CompileError::Graph(_)
        ));
    }

    #[test]
    fn error_display() {
        let e = CompileError::WeightsExceedHbm {
            needed: 10,
            available: 5,
        };
        assert!(format!("{e}").contains("HBM"));
    }
}
