//! Analytic cost model: estimate latency without simulating.
//!
//! XLA makes fusion/layout decisions with a closed-form cost model long
//! before anything executes. This module provides the same capability:
//! a roofline-style estimate of an executable's latency from its step
//! plan — compute time on the MXU/VPU pools, transfer time on each
//! memory channel, and the max of the three as the bound (perfect
//! overlap), with the sum as the no-overlap ceiling.
//!
//! The estimate deliberately ignores dependency structure, so it brackets
//! the simulator: `lower_bound <= simulated <= upper_bound` always — the
//! lower bound is the busiest pooled resource alone (perfect overlap) and
//! the upper bound is full serialization of every step, which the greedy
//! scheduler never exceeds.

use tpu_arch::{ChipConfig, MemLevel};
use tpu_sim::machine::Machine;
use tpu_sim::plan::{StepKind, StepPlan};

/// The closed-form latency estimate for one plan on one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Aggregate MXU busy time divided over the MXU pool, seconds.
    pub mxu_seconds: f64,
    /// Aggregate VPU busy time divided over the VPU pool, seconds.
    pub vpu_seconds: f64,
    /// HBM-channel transfer time, seconds.
    pub hbm_seconds: f64,
    /// CMEM-channel transfer time, seconds.
    pub cmem_seconds: f64,
    /// ICI transfer time (per link pool), seconds.
    pub ici_seconds: f64,
    /// Sum of every step's unit occupancy, seconds — the true
    /// full-serialization ceiling (the greedy scheduler never exceeds
    /// it; see the `makespan_bounds` property test in `tpu-sim`).
    pub serial_seconds: f64,
}

impl CostEstimate {
    /// The perfect-overlap bound: the busiest resource alone.
    pub fn lower_bound_s(&self) -> f64 {
        [
            self.mxu_seconds,
            self.vpu_seconds,
            self.hbm_seconds,
            self.cmem_seconds,
            self.ici_seconds,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// The no-overlap ceiling: every step serialized.
    pub fn upper_bound_s(&self) -> f64 {
        self.serial_seconds
    }

    /// Which resource bounds the plan (the roofline verdict).
    pub fn bottleneck(&self) -> &'static str {
        let lb = self.lower_bound_s();
        if lb == self.mxu_seconds {
            "mxu"
        } else if lb == self.hbm_seconds {
            "hbm"
        } else if lb == self.vpu_seconds {
            "vpu"
        } else if lb == self.cmem_seconds {
            "cmem"
        } else {
            "ici"
        }
    }
}

/// Estimates a plan's cost on a chip analytically.
pub fn estimate(plan: &StepPlan, chip: &ChipConfig) -> CostEstimate {
    let machine = Machine::new(chip.clone());
    let (mxu_pool, vpu_pool, _dma, ici_pool) = machine.pool_sizes();
    let mut mxu = 0.0f64;
    let mut vpu = 0.0f64;
    let mut hbm = 0.0f64;
    let mut cmem = 0.0f64;
    let mut ici = 0.0f64;
    let mut serial = 0.0f64;
    for step in plan.steps() {
        let cost = machine.step_cost(&step.kind);
        serial += cost.unit_seconds;
        match step.kind {
            StepKind::Mxu { .. } => mxu += cost.unit_seconds,
            StepKind::Vpu { .. } => vpu += cost.unit_seconds,
            StepKind::Ici { .. } => ici += cost.unit_seconds,
            StepKind::DmaIn { from, .. } => match from {
                MemLevel::Cmem => cmem += cost.channel_seconds,
                _ => hbm += cost.channel_seconds,
            },
            StepKind::DmaOut { to, .. } => match to {
                MemLevel::Cmem => cmem += cost.channel_seconds,
                _ => hbm += cost.channel_seconds,
            },
        }
    }
    CostEstimate {
        mxu_seconds: mxu / mxu_pool as f64,
        vpu_seconds: vpu / vpu_pool as f64,
        hbm_seconds: hbm,
        cmem_seconds: cmem,
        ici_seconds: ici / ici_pool as f64,
        serial_seconds: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerOptions, Graph};
    use tpu_arch::catalog;
    use tpu_numerics::DType;
    use tpu_sim::Simulator;

    fn mlp(batch: u64, width: u64) -> Graph {
        let mut g = Graph::new("m", DType::Bf16);
        let mut x = g.parameter(&[batch, width]).unwrap();
        for _ in 0..3 {
            let w = g.constant(&[width, width]).unwrap();
            x = g.dot(x, w).unwrap();
            x = g.relu(x).unwrap();
        }
        g.mark_output(x);
        g
    }

    #[test]
    fn estimate_brackets_the_simulator() {
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        for (batch, width) in [(1u64, 512u64), (8, 1024), (64, 2048), (256, 1024)] {
            let g = mlp(batch, width);
            for options in [CompilerOptions::default(), CompilerOptions::no_cmem()] {
                let exe = compile(&g, &chip, &options).unwrap();
                let est = estimate(exe.plan(), &chip);
                let simulated = sim.run(exe.plan()).unwrap().seconds;
                assert!(
                    simulated >= est.lower_bound_s() * 0.999,
                    "b{batch} w{width}: sim {simulated} < lower {}",
                    est.lower_bound_s()
                );
                assert!(
                    simulated <= est.upper_bound_s() * 1.001,
                    "b{batch} w{width}: sim {simulated} > upper {}",
                    est.upper_bound_s()
                );
            }
        }
    }

    #[test]
    fn bottleneck_verdict_tracks_batch_size() {
        let chip = catalog::tpu_v4i();
        let no_cmem = CompilerOptions::no_cmem();
        // Tiny batch, fat weights from HBM: transfer-dominated.
        let small = compile(&mlp(1, 2048), &chip, &no_cmem).unwrap();
        let verdict_small = estimate(small.plan(), &chip).bottleneck();
        // Huge batch: compute-dominated.
        let big = compile(&mlp(2048, 2048), &chip, &no_cmem).unwrap();
        let verdict_big = estimate(big.plan(), &chip).bottleneck();
        assert_eq!(verdict_small, "hbm");
        assert_eq!(verdict_big, "mxu");
    }

    #[test]
    fn cmem_shifts_transfer_time_between_channels() {
        let chip = catalog::tpu_v4i();
        let g = mlp(4, 2048);
        let with = estimate(
            compile(&g, &chip, &CompilerOptions::default())
                .unwrap()
                .plan(),
            &chip,
        );
        let without = estimate(
            compile(&g, &chip, &CompilerOptions::no_cmem())
                .unwrap()
                .plan(),
            &chip,
        );
        assert!(with.hbm_seconds < without.hbm_seconds / 4.0);
        assert!(with.cmem_seconds > 0.0);
        assert_eq!(without.cmem_seconds, 0.0);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let chip = catalog::tpu_v4i();
        let est = estimate(&StepPlan::new("empty"), &chip);
        assert_eq!(est.lower_bound_s(), 0.0);
        assert_eq!(est.upper_bound_s(), 0.0);
    }
}
