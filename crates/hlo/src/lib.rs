//! A miniature XLA: the ahead-of-time compiler of the TPU reproduction.
//!
//! Lesson 2 of the paper — *compiler compatibility trumps binary
//! compatibility* — only makes sense with a compiler in hand. This crate
//! provides one with the same pass structure as XLA's TPU backend, at
//! model scale:
//!
//! 1. an **HLO graph IR** ([`graph`]) with shape inference over the op
//!    set the production apps need (dot, conv, elementwise, softmax,
//!    layer norm, embedding lookup, pooling), plus a reference
//!    **interpreter** ([`eval`]) that defines each op's semantics;
//! 2. a **verifier** ([`verify`]): typed structural invariants over
//!    graphs, memory plans, and fusion maps — the gate every
//!    hand-assembled or pass-rewritten graph must clear;
//! 3. an **optimizing pass framework** ([`passes`]): constant folding,
//!    algebraic simplification, DCE, and fusion-as-analysis run to a
//!    fixpoint by a [`PassManager`] that sandwiches every rewrite
//!    between the verifier, an exact matrix-flop cross-check, and
//!    (optionally) interpreter-backed differential equivalence;
//! 4. **memory planning** ([`memory`]): weight placement into TPUv4i's
//!    CMEM by a benefit-per-byte knapsack, plus VMEM tile sizing;
//! 5. **lowering** ([`lower`]): tiling onto the systolic MXU, double
//!    buffering, emission of a [`tpu_sim::StepPlan`] for the performance
//!    simulator *and* a schematic [`tpu_isa::Program`] in the target
//!    generation's binary encoding.
//!
//! The passes can be enabled one at a time ([`CompilerOptions::level`]),
//! which is how experiment E7 regenerates the paper's "compiler gains
//! over time" figure, and [`CompilerOptions::for_chip`] maps each
//! generation to the pipeline contemporary to it — the machinery behind
//! E26's replay of Lesson 2; `CompilerOptions::bit_exact_with`
//! implements the backwards-ML-compatibility mode of E14.
//!
//! # Example
//!
//! ```
//! use tpu_hlo::{compile, CompilerOptions, Graph};
//! use tpu_arch::catalog;
//! use tpu_numerics::DType;
//! use tpu_sim::Simulator;
//!
//! let mut g = Graph::new("mlp", DType::Bf16);
//! let x = g.parameter(&[8, 256]).unwrap();
//! let w = g.constant(&[256, 1024]).unwrap();
//! let h = g.dot(x, w).unwrap();
//! let y = g.relu(h).unwrap();
//! g.mark_output(y);
//!
//! let chip = catalog::tpu_v4i();
//! let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
//! let report = Simulator::new(chip).run(exe.plan()).unwrap();
//! assert!(report.seconds > 0.0);
//! ```

pub mod cost;
pub mod eval;
pub mod fusion;
pub mod graph;
pub mod liveness;
pub mod lower;
pub mod memory;
pub mod passes;
pub mod pipeline;
pub mod shape;
pub mod verify;

pub use graph::{Graph, HloOp, Node, OpId};
pub use passes::{Pass, PassError, PassManager, PassReport};
pub use pipeline::{compile, CompileError, CompilerOptions, Executable, OptLevel, PassSummary};
pub use shape::{ShapeError, TensorShape};
pub use verify::{Verifier, VerifyError};
