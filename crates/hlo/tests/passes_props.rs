//! Property tests for the pass framework: on randomly dirtied graphs
//! covering the whole rewrite surface (weights hidden behind reshapes,
//! identity activations, duplicated ReLUs, no-op reshapes, `max(x,x)`,
//! dead subgraphs), the O3 pipeline must stay inside its contract —
//! verified output, bit-identical semantics, exact matrix-flop
//! preservation, and a true fixpoint.

use proptest::prelude::*;

use tpu_hlo::eval;
use tpu_hlo::graph::BinaryKind;
use tpu_hlo::passes::pipeline_for;
use tpu_hlo::{CompilerOptions, Graph, OptLevel, Verifier};
use tpu_numerics::activation::Activation;
use tpu_numerics::DType;

/// A random MLP-ish chain with compiler bait layered on: per layer the
/// weight may hide behind a flatten/reshape pair, an identity
/// activation and a duplicate ReLU may follow the dot, and one of
/// {no-op reshape, `max(x,x)`, layer norm} may cap the layer. A dead
/// `relu(constant)` subgraph may dangle off the side.
fn dirty_chain() -> impl Strategy<Value = Graph> {
    (
        1u64..8,
        prop::collection::vec(
            (
                4u64..40,
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                0u8..4,
            ),
            1..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(batch, layers, dead)| {
            let mut g = Graph::new("dirty-chain", DType::Bf16);
            let mut width = layers[0].0;
            let mut x = g.parameter(&[batch, width]).expect("valid");
            for (next, hide_weight, add_identity, dup_relu, extra) in layers {
                let w = if hide_weight {
                    let flat = g.constant(&[width * next]).expect("valid");
                    g.reshape(flat, &[width, next]).expect("same elements")
                } else {
                    g.constant(&[width, next]).expect("valid")
                };
                x = g.dot(x, w).expect("chained");
                if add_identity {
                    x = g.activate(x, Activation::Identity).expect("same shape");
                }
                x = g.relu(x).expect("same shape");
                if dup_relu {
                    x = g.relu(x).expect("same shape");
                }
                match extra {
                    1 => x = g.reshape(x, &[batch, next]).expect("no-op"),
                    2 => x = g.binary(x, x, BinaryKind::Max).expect("same shape"),
                    3 => x = g.layer_norm(x).expect("same shape"),
                    _ => {}
                }
                width = next;
            }
            if dead {
                let c = g.constant(&[16, 16]).expect("valid");
                let _ = g.relu(c).expect("dead branch");
            }
            g.mark_output(x);
            g
        })
}

/// `(mxu, total)` flops over output-reachable nodes — the same
/// liveness the pass manager's gate uses.
fn live_flops(g: &Graph) -> (u64, u64) {
    let mut seen = vec![false; g.nodes().len()];
    let mut stack: Vec<_> = g.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if seen[id.index()] {
            continue;
        }
        seen[id.index()] = true;
        stack.extend(g.node(id).op.operands());
    }
    let (mut mxu, mut total) = (0u64, 0u64);
    for n in g.nodes() {
        if seen[n.id.index()] {
            let f = g.node_flops(n);
            total += f;
            if n.op.is_matrix_op() {
                mxu += f;
            }
        }
    }
    (mxu, total)
}

fn o3() -> CompilerOptions {
    CompilerOptions::level(OptLevel::O3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pipeline's output passes the full verifier (graph and
    /// fusion map), and its differential-equivalence harness accepts
    /// every rewrite at *zero* tolerance — the O3 passes are exact.
    #[test]
    fn pipeline_preserves_verification_and_semantics(g in dirty_chain()) {
        let report = pipeline_for(&o3())
            .check_equivalence(0.0)
            .run(&g)
            .expect("gated pipeline");
        let verifier = Verifier::new();
        verifier.verify_graph(&report.graph).expect("output verifies");
        verifier
            .verify_fusion(&report.graph, &report.fusion)
            .expect("fusion map verifies");
        // Belt and braces: recheck equivalence outside the manager.
        let before = eval::evaluate(&g).expect("input evaluates");
        let after = eval::evaluate(&report.graph).expect("output evaluates");
        prop_assert!(eval::outputs_divergence(&before, &after, 0.0).is_none());
    }

    /// Running the pipeline on its own output rewrites nothing: the
    /// reported fixpoint is a true fixpoint.
    #[test]
    fn pipeline_is_idempotent_at_fixpoint(g in dirty_chain()) {
        let first = pipeline_for(&o3()).run(&g).expect("first run");
        let second = pipeline_for(&o3()).run(&first.graph).expect("second run");
        prop_assert!(second.applied.is_empty(), "re-applied: {:?}", second.applied);
        prop_assert_eq!(&second.graph, &first.graph);
        prop_assert_eq!(second.sweeps, 1);
        // The fusion analysis is deterministic across runs.
        prop_assert_eq!(&second.fusion, &first.fusion);
    }

    /// Live matrix flops are preserved exactly; total live flops never
    /// increase; node count never grows.
    #[test]
    fn pipeline_preserves_matrix_work(g in dirty_chain()) {
        let (mxu_before, total_before) = live_flops(&g);
        let report = pipeline_for(&o3()).run(&g).expect("gated pipeline");
        let (mxu_after, total_after) = live_flops(&report.graph);
        prop_assert_eq!(mxu_after, mxu_before);
        prop_assert!(total_after <= total_before);
        prop_assert!(report.nodes_after <= report.nodes_before);
        prop_assert_eq!(report.nodes_after, report.graph.nodes().len());
    }

    /// Every opt level's pipeline upholds the same contract — O0's
    /// empty pipeline included.
    #[test]
    fn every_opt_level_is_sound(g in dirty_chain(), level in 0u8..4) {
        let level = match level {
            0 => OptLevel::O0,
            1 => OptLevel::O1,
            2 => OptLevel::O2,
            _ => OptLevel::O3,
        };
        let report = pipeline_for(&CompilerOptions::level(level))
            .check_equivalence(0.0)
            .run(&g)
            .expect("gated pipeline");
        Verifier::new().verify_graph(&report.graph).expect("verifies");
        let (mxu_before, _) = live_flops(&g);
        let (mxu_after, _) = live_flops(&report.graph);
        prop_assert_eq!(mxu_after, mxu_before);
    }
}
