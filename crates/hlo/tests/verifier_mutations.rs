//! Mutation suite for the [`Verifier`]: every invariant it enforces is
//! broken here, one seeded corruption per test, and each corruption
//! must be rejected with its *specific* typed [`VerifyError`] — not
//! just "some error". This is what makes the verifier trustworthy as
//! the gate around pass rewrites: a checker that cannot name the
//! invariant it caught cannot be tested for coverage.
//!
//! The corruptions use the deliberate escape hatches
//! ([`OpId::from_raw`], [`Graph::from_parts`],
//! [`MemoryPlan::from_parts`], [`FusionMap::from_entries`]); the
//! builder API itself cannot construct any of these states.

use std::collections::HashSet;

use tpu_hlo::fusion::FusionMap;
use tpu_hlo::memory::MemoryPlan;
use tpu_hlo::{Graph, HloOp, OpId, TensorShape, Verifier, VerifyError};
use tpu_numerics::DType;

/// The shared victim: `%0 param [8,256]  %1 const [256,512]  %2 dot
/// %3 relu  %4 const [512,10]  %5 dot`, output `%5`.
fn mlp() -> Graph {
    let mut g = Graph::new("mlp", DType::Bf16);
    let x = g.parameter(&[8, 256]).unwrap();
    let w1 = g.constant(&[256, 512]).unwrap();
    let h = g.dot(x, w1).unwrap();
    let h = g.relu(h).unwrap();
    let w2 = g.constant(&[512, 10]).unwrap();
    let y = g.dot(h, w2).unwrap();
    g.mark_output(y);
    g
}

/// Bytes of the two weight constants at bf16.
const W1_BYTES: u64 = 256 * 512 * 2;
const W2_BYTES: u64 = 512 * 10 * 2;

fn id(raw: u32) -> OpId {
    OpId::from_raw(raw)
}

// ---------------------------------------------------------------------
// Graph structure
// ---------------------------------------------------------------------

#[test]
fn control_the_unmutated_graph_verifies() {
    Verifier::new().verify_graph(&mlp()).unwrap();
}

#[test]
fn node_id_not_matching_position_is_id_mismatch() {
    let (name, dtype, mut nodes, outputs) = mlp().into_parts();
    nodes[1].id = id(7);
    let g = Graph::from_parts(&name, dtype, nodes, outputs);
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::IdMismatch {
            position: 1,
            found: id(7),
        })
    );
}

#[test]
fn operand_past_the_node_list_is_dangling_operand() {
    let (name, dtype, mut nodes, outputs) = mlp().into_parts();
    nodes[2].op = HloOp::Dot {
        lhs: id(0),
        rhs: id(99),
    };
    let g = Graph::from_parts(&name, dtype, nodes, outputs);
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::DanglingOperand {
            node: id(2),
            operand: id(99),
            nodes: 6,
        })
    );
}

#[test]
fn operand_not_preceding_its_user_is_use_before_def() {
    // %2 reading %5 is also the only way to smuggle in a cycle, since
    // ids are positions; one check rules out both.
    let (name, dtype, mut nodes, outputs) = mlp().into_parts();
    nodes[2].op = HloOp::Dot {
        lhs: id(0),
        rhs: id(5),
    };
    let g = Graph::from_parts(&name, dtype, nodes, outputs);
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::UseBeforeDef {
            node: id(2),
            operand: id(5),
        })
    );
}

#[test]
fn operands_that_no_longer_infer_are_bad_shape() {
    // Retarget the dot's weights at the parameter: [8,256] @ [8,256]
    // has no matching contraction dimension.
    let (name, dtype, mut nodes, outputs) = mlp().into_parts();
    nodes[2].op = HloOp::Dot {
        lhs: id(0),
        rhs: id(0),
    };
    let g = Graph::from_parts(&name, dtype, nodes, outputs);
    assert!(matches!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::BadShape { node, .. }) if node == id(2)
    ));
}

#[test]
fn stored_shape_disagreeing_with_inference_is_shape_mismatch() {
    let (name, dtype, mut nodes, outputs) = mlp().into_parts();
    nodes[3].shape = TensorShape::new(&[1, 1]).unwrap();
    let g = Graph::from_parts(&name, dtype, nodes, outputs);
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::ShapeMismatch {
            node: id(3),
            stored: TensorShape::new(&[1, 1]).unwrap(),
            inferred: TensorShape::new(&[8, 512]).unwrap(),
        })
    );
}

#[test]
fn empty_output_list_is_no_outputs() {
    let (name, dtype, nodes, _) = mlp().into_parts();
    let g = Graph::from_parts(&name, dtype, nodes, Vec::new());
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::NoOutputs)
    );
}

#[test]
fn output_past_the_node_list_is_dangling_output() {
    let (name, dtype, nodes, _) = mlp().into_parts();
    let g = Graph::from_parts(&name, dtype, nodes, vec![id(42)]);
    assert_eq!(
        Verifier::new().verify_graph(&g),
        Err(VerifyError::DanglingOutput {
            output: id(42),
            nodes: 6,
        })
    );
}

// ---------------------------------------------------------------------
// Memory plans
// ---------------------------------------------------------------------

fn plan(residents: &[u32], cmem_used: u64, hbm_weight_bytes: u64) -> MemoryPlan {
    let set: HashSet<OpId> = residents.iter().map(|&r| id(r)).collect();
    MemoryPlan::from_parts(set, cmem_used, hbm_weight_bytes, 512, false)
}

#[test]
fn control_a_correct_plan_verifies() {
    let g = mlp();
    let p = plan(&[1], W1_BYTES, W2_BYTES);
    Verifier::new().verify_memory(&g, &p, W1_BYTES).unwrap();
}

#[test]
fn resident_past_the_node_list_is_resident_dangling() {
    let g = mlp();
    let p = plan(&[9], 0, W1_BYTES + W2_BYTES);
    assert_eq!(
        Verifier::new().verify_memory(&g, &p, u64::MAX),
        Err(VerifyError::ResidentDangling {
            id: id(9),
            nodes: 6
        })
    );
}

#[test]
fn non_constant_resident_is_resident_not_constant() {
    // The relu (%3) is an activation — only weights live in CMEM.
    let g = mlp();
    let p = plan(&[3], 0, W1_BYTES + W2_BYTES);
    assert_eq!(
        Verifier::new().verify_memory(&g, &p, u64::MAX),
        Err(VerifyError::ResidentNotConstant { id: id(3) })
    );
}

#[test]
fn claimed_usage_disagreeing_with_residents_is_cmem_accounting_wrong() {
    let g = mlp();
    let p = plan(&[1], 1, W2_BYTES);
    assert_eq!(
        Verifier::new().verify_memory(&g, &p, u64::MAX),
        Err(VerifyError::CmemAccountingWrong {
            claimed: 1,
            actual: W1_BYTES,
        })
    );
}

#[test]
fn usage_past_the_budget_is_cmem_overbooked() {
    // Accounting is internally consistent; the plan just books one
    // byte more than the budget allows.
    let g = mlp();
    let p = plan(&[1], W1_BYTES, W2_BYTES);
    assert_eq!(
        Verifier::new().verify_memory(&g, &p, W1_BYTES - 1),
        Err(VerifyError::CmemOverbooked {
            used: W1_BYTES,
            budget: W1_BYTES - 1,
        })
    );
}

#[test]
fn lost_weight_bytes_are_weight_accounting_wrong() {
    // CMEM holds w1 but the HBM side forgot w2 entirely.
    let g = mlp();
    let p = plan(&[1], W1_BYTES, 0);
    assert_eq!(
        Verifier::new().verify_memory(&g, &p, u64::MAX),
        Err(VerifyError::WeightAccountingWrong {
            claimed: W1_BYTES,
            actual: W1_BYTES + W2_BYTES,
        })
    );
}

// ---------------------------------------------------------------------
// Fusion maps
// ---------------------------------------------------------------------

#[test]
fn control_the_fusion_passes_own_map_verifies() {
    let g = mlp();
    let f = tpu_hlo::fusion::fuse(&g);
    assert!(f.fused_count() > 0);
    Verifier::new().verify_fusion(&g, &f).unwrap();
}

#[test]
fn fusion_entry_past_the_node_list_is_fusion_dangling() {
    let g = mlp();
    let f = FusionMap::from_entries(&[(id(99), id(2))]);
    assert_eq!(
        Verifier::new().verify_fusion(&g, &f),
        Err(VerifyError::FusionDangling {
            id: id(99),
            nodes: 6
        })
    );
}

#[test]
fn fused_constant_is_fusion_node_not_fusible() {
    // Weights (%1) emit no compute steps; fusing one into a dot is
    // meaningless and the lowerer would silently skip it.
    let g = mlp();
    let f = FusionMap::from_entries(&[(id(1), id(2))]);
    assert_eq!(
        Verifier::new().verify_fusion(&g, &f),
        Err(VerifyError::FusionNodeNotFusible { node: id(1) })
    );
}

#[test]
fn parameter_root_is_fusion_root_not_matrix() {
    let g = mlp();
    let f = FusionMap::from_entries(&[(id(3), id(0))]);
    assert_eq!(
        Verifier::new().verify_fusion(&g, &f),
        Err(VerifyError::FusionRootNotMatrix { root: id(0) })
    );
}

#[test]
fn fused_root_is_fusion_root_fused() {
    // %3 claims root %5 while %5 is itself fused away into %2:
    // clusters must be single-root.
    let g = mlp();
    let f = FusionMap::from_entries(&[(id(3), id(5)), (id(5), id(2))]);
    assert_eq!(
        Verifier::new().verify_fusion(&g, &f),
        Err(VerifyError::FusionRootFused { root: id(5) })
    );
}

#[test]
fn unreachable_root_is_fusion_disconnected() {
    // %3's producer chain leads to %2, not to the %5 it claims.
    let g = mlp();
    let f = FusionMap::from_entries(&[(id(3), id(5))]);
    assert_eq!(
        Verifier::new().verify_fusion(&g, &f),
        Err(VerifyError::FusionDisconnected {
            node: id(3),
            root: id(5),
        })
    );
}

// ---------------------------------------------------------------------
// End to end: compile() runs the same gate
// ---------------------------------------------------------------------

#[test]
fn compile_rejects_a_mutated_graph_with_the_typed_error() {
    let (name, dtype, nodes, _) = mlp().into_parts();
    let g = Graph::from_parts(&name, dtype, nodes, vec![id(42)]);
    let chip = tpu_arch::catalog::tpu_v4i();
    let err = tpu_hlo::compile(&g, &chip, &tpu_hlo::CompilerOptions::default()).unwrap_err();
    assert!(matches!(
        err,
        tpu_hlo::CompileError::Verify(VerifyError::DanglingOutput { output, nodes: 6 })
            if output == id(42)
    ));
}
