//! Property tests for the compiler passes.

use proptest::prelude::*;

use tpu_arch::catalog;
use tpu_hlo::fusion::fuse;
use tpu_hlo::memory;
use tpu_hlo::{compile, CompilerOptions, Graph};
use tpu_numerics::activation::Activation;
use tpu_numerics::DType;

/// A random chain: parameter → (dot → [activation]) repeated.
fn random_chain() -> impl Strategy<Value = Graph> {
    (
        1u64..32,
        prop::collection::vec((1u64..200, any::<bool>()), 1..6),
    )
        .prop_map(|(batch, layers)| {
            let mut g = Graph::new("prop-chain", DType::Bf16);
            let mut width = layers[0].0.max(1);
            let mut x = g.parameter(&[batch, width]).expect("valid");
            for (next, with_act) in layers {
                let w = g.constant(&[width, next]).expect("valid");
                x = g.dot(x, w).expect("chained");
                if with_act {
                    x = g.activate(x, Activation::Gelu).expect("same shape");
                }
                width = next;
            }
            g.mark_output(x);
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The memory planner never over-books the CMEM budget, and its
    /// placement accounting is exact.
    #[test]
    fn planner_respects_budget(g in random_chain(), budget in 0u64..(64 << 20)) {
        let chip = catalog::tpu_v4i();
        let plan = memory::plan(&g, &chip, Some(budget));
        prop_assert!(plan.cmem_used <= budget);
        prop_assert_eq!(plan.cmem_used + plan.hbm_weight_bytes, g.weight_bytes());
        let frac = plan.cmem_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    /// Fusion only ever fuses fusible ops into matrix-op roots, and the
    /// cluster map is consistent.
    #[test]
    fn fusion_is_well_formed(g in random_chain()) {
        let f = fuse(&g);
        for node in g.nodes() {
            if let Some(root) = f.root_of(node.id) {
                prop_assert!(node.op.is_fusible_consumer());
                prop_assert!(g.node(root).op.is_matrix_op());
                prop_assert!(root < node.id, "root must precede fused node");
                prop_assert!(f.cluster_of(root).contains(&node.id));
            }
        }
    }

    /// Step plans are structurally topological: every dependency id is
    /// smaller than its dependent's id.
    #[test]
    fn plans_are_topological(g in random_chain()) {
        let chip = catalog::tpu_v4i();
        let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        for step in exe.plan().steps() {
            for dep in &step.deps {
                prop_assert!(dep.index() < step.id.index());
            }
        }
        // And there is exactly one output DMA per graph output.
        let outputs = exe
            .plan()
            .steps()
            .iter()
            .filter(|s| s.tag == "output")
            .count();
        prop_assert_eq!(outputs, g.outputs().len());
    }

    /// Disabling fusion never changes total matrix work, only VPU
    /// round trips.
    #[test]
    fn fusion_preserves_matrix_work(g in random_chain()) {
        let chip = catalog::tpu_v4i();
        let fused = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let unfused = compile(
            &g,
            &chip,
            &CompilerOptions {
                fusion: false,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let mxu_flops = |exe: &tpu_hlo::Executable| -> u64 {
            exe.plan()
                .steps()
                .iter()
                .filter(|s| matches!(s.kind, tpu_sim::StepKind::Mxu { .. }))
                .map(|s| s.kind.flops())
                .sum()
        };
        prop_assert_eq!(mxu_flops(&fused), mxu_flops(&unfused));
        prop_assert!(fused.plan().len() <= unfused.plan().len());
    }

    /// Compilation is deterministic.
    #[test]
    fn compilation_is_deterministic(g in random_chain()) {
        let chip = catalog::tpu_v4i();
        let a = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let b = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        prop_assert_eq!(a.plan(), b.plan());
        prop_assert_eq!(a.program(), b.program());
        prop_assert_eq!(a.binary().unwrap(), b.binary().unwrap());
    }
}
