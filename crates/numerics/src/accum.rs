//! Floating-point accumulation-order emulation.
//!
//! Floating-point addition is not associative, so two chips that both
//! "compute a dot product in fp32" can disagree in the last bits if their
//! accumulation trees differ. The paper's Lesson 4 ("backwards ML
//! compatibility helps deploy DNNs quickly") is about exactly this: TPUv4i
//! can reproduce the numerics of earlier generations so that a model
//! validated on TPUv2/v3 serves on v4i without quality re-validation.
//!
//! This module emulates the accumulation orders of the generations'
//! matrix units and provides the bit-exactness check experiment E14 uses.

use crate::bf16::Bf16;

/// The order in which a reduction sums its partial products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumOrder {
    /// Strict left-to-right sequential accumulation (a 1-wide MAC chain,
    /// like the TPUv1 systolic column for int accumulate, and the
    /// reference semantics for backwards-compatible mode).
    Sequential,
    /// Fixed-width chunked accumulation: partials are summed sequentially
    /// within chunks of `width`, then chunk sums are added sequentially.
    /// A systolic array of height `width` behaves this way when a longer
    /// inner dimension is folded over the array.
    Chunked {
        /// Chunk width, e.g. 128 for a 128x128 MXU, 256 for TPUv1's MXU.
        width: usize,
    },
    /// Balanced binary-tree reduction (typical of a wide SIMD reducer).
    PairwiseTree,
}

impl AccumOrder {
    /// The native accumulation order of a systolic MXU of dimension `d`.
    pub fn systolic(d: usize) -> AccumOrder {
        AccumOrder::Chunked { width: d.max(1) }
    }
}

/// Sums `xs` in fp32 following the given order.
pub fn sum_f32(xs: &[f32], order: AccumOrder) -> f32 {
    match order {
        AccumOrder::Sequential => xs.iter().fold(0.0f32, |acc, &x| acc + x),
        AccumOrder::Chunked { width } => {
            let width = width.max(1);
            let mut total = 0.0f32;
            for chunk in xs.chunks(width) {
                let mut partial = 0.0f32;
                for &x in chunk {
                    partial += x;
                }
                total += partial;
            }
            total
        }
        AccumOrder::PairwiseTree => pairwise(xs),
    }
}

fn pairwise(xs: &[f32]) -> f32 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        n => {
            let mid = n / 2;
            pairwise(&xs[..mid]) + pairwise(&xs[mid..])
        }
    }
}

/// Dot product with bf16 multiplication and fp32 accumulation in the given
/// order — the TPUv2+ MXU datapath.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_bf16(a: &[f32], b: &[f32], order: AccumOrder) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    let products: Vec<f32> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| (Bf16::from_f32(x).to_f32()) * (Bf16::from_f32(y).to_f32()))
        .collect();
    sum_f32(&products, order)
}

/// Dot product entirely in fp32 with the given accumulation order.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f32(a: &[f32], b: &[f32], order: AccumOrder) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    let products: Vec<f32> = a.iter().zip(b).map(|(&x, &y)| x * y).collect();
    sum_f32(&products, order)
}

/// Whether two accumulation orders produce bit-identical results for the
/// given inputs (the backwards-ML-compatibility check).
pub fn bit_exact(a: &[f32], b: &[f32], lhs: AccumOrder, rhs: AccumOrder) -> bool {
    dot_bf16(a, b, lhs).to_bits() == dot_bf16(a, b, rhs).to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn awkward_inputs(n: usize) -> (Vec<f32>, Vec<f32>) {
        // Values with widely varying magnitudes so that accumulation order
        // matters: alternating large/small with sign flips.
        let a: Vec<f32> = (0..n)
            .map(|i| {
                let m = if i % 2 == 0 { 1.0e4 } else { 1.0e-3 };
                let s = if i % 3 == 0 { -1.0 } else { 1.0 };
                s * m * (1.0 + (i as f32) * 0.001)
            })
            .collect();
        let b: Vec<f32> = (0..n).map(|i| 1.0 + (i as f32 * 0.37).sin()).collect();
        (a, b)
    }

    #[test]
    fn empty_and_single_sums() {
        for order in [
            AccumOrder::Sequential,
            AccumOrder::Chunked { width: 128 },
            AccumOrder::PairwiseTree,
        ] {
            assert_eq!(sum_f32(&[], order), 0.0);
            assert_eq!(sum_f32(&[3.5], order), 3.5);
        }
    }

    #[test]
    fn orders_agree_on_exact_values() {
        // Small integers: every intermediate is exact, so all orders match.
        let xs: Vec<f32> = (1..=64).map(|i| i as f32).collect();
        let expect = (64 * 65 / 2) as f32;
        assert_eq!(sum_f32(&xs, AccumOrder::Sequential), expect);
        assert_eq!(sum_f32(&xs, AccumOrder::Chunked { width: 8 }), expect);
        assert_eq!(sum_f32(&xs, AccumOrder::PairwiseTree), expect);
    }

    #[test]
    fn orders_disagree_on_awkward_values() {
        let (a, b) = awkward_inputs(1024);
        let seq = dot_f32(&a, &b, AccumOrder::Sequential);
        let tree = dot_f32(&a, &b, AccumOrder::PairwiseTree);
        // Both are "correct" fp32 dots, but not bit-identical.
        assert_ne!(
            seq.to_bits(),
            tree.to_bits(),
            "expected accumulation order to be observable"
        );
        // ... while being close in relative terms.
        let rel = ((seq - tree) / seq).abs();
        assert!(rel < 1e-2, "orders should agree approximately, rel={rel}");
    }

    #[test]
    fn same_order_is_always_bit_exact() {
        let (a, b) = awkward_inputs(512);
        for order in [
            AccumOrder::Sequential,
            AccumOrder::systolic(128),
            AccumOrder::PairwiseTree,
        ] {
            assert!(bit_exact(&a, &b, order, order));
        }
    }

    #[test]
    fn different_mxu_sizes_break_bit_exactness() {
        // TPUv1 had a 256x256 MXU, TPUv2+ use 128x128: folding a long
        // inner dimension over the array yields different chunk sums for
        // *some* inputs. Search a few deterministic input scales for a
        // witness; rounding coincidences can hide the effect for any one.
        let mut found_difference = false;
        for scale_exp in 0..16 {
            let (mut a, b) = awkward_inputs(2048);
            let scale = (1.25f32).powi(scale_exp);
            for (i, x) in a.iter_mut().enumerate() {
                *x *= scale * (1.0 + (i % 7) as f32 * 0.13);
            }
            if !bit_exact(&a, &b, AccumOrder::systolic(256), AccumOrder::systolic(128)) {
                found_difference = true;
                break;
            }
        }
        assert!(
            found_difference,
            "expected some input where 256-wide and 128-wide systolic \
             accumulation orders are observable"
        );
    }

    #[test]
    fn chunk_width_of_one_is_sequential() {
        let (a, b) = awkward_inputs(300);
        assert!(bit_exact(
            &a,
            &b,
            AccumOrder::Sequential,
            AccumOrder::Chunked { width: 1 }
        ));
    }

    #[test]
    fn chunked_equals_sequential_when_chunk_covers_input() {
        let (a, b) = awkward_inputs(100);
        assert!(bit_exact(
            &a,
            &b,
            AccumOrder::Sequential,
            AccumOrder::Chunked { width: 128 }
        ));
    }

    #[test]
    fn bf16_dot_loses_precision_vs_f32_dot() {
        let (a, b) = awkward_inputs(256);
        let lo = dot_bf16(&a, &b, AccumOrder::Sequential);
        let hi = dot_f32(&a, &b, AccumOrder::Sequential);
        assert_ne!(lo, hi);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dot_panics() {
        dot_f32(&[1.0], &[1.0, 2.0], AccumOrder::Sequential);
    }
}
