//! Error statistics between a reference signal and an approximation,
//! plus the workspace's one shared nearest-rank quantile rule.

/// Nearest-rank (1-based) position of quantile `q` among `n` ordered
/// samples: `ceil(q * n)` clamped to `[1, n]`, per the classic
/// nearest-rank definition (q = 0 still selects the first sample,
/// q = 1 the last; out-of-range q is clamped to `[0, 1]`).
///
/// Returns 0 when `n == 0` — empty inputs have no rank, and callers
/// must handle that case explicitly before indexing.
///
/// This is the single implementation behind every quantile in the
/// workspace (`serving::stats`, `serving::metrics::Histogram`,
/// `bench::multiseed::Envelope`, `numerics::quant` clipping).
pub fn nearest_rank(q: f64, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n)
}

/// Zero-based index form of [`nearest_rank`] for direct slice indexing:
/// `nearest_rank(q, n) - 1`. Returns 0 for `n == 0` (callers must guard
/// empty slices before indexing).
pub fn nearest_rank_index(q: f64, n: usize) -> usize {
    (nearest_rank(q, n as u64).saturating_sub(1)) as usize
}

/// Summary statistics of the error `approx - reference`.
///
/// Used to score quantization and reduced-precision serving quality in
/// experiment E9 (int8 vs bf16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Root-mean-square error.
    pub rmse: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio in dB
    /// (`10 log10(signal_power / noise_power)`); infinite if the error is 0.
    pub sqnr_db: f64,
    /// Cosine similarity between the two vectors (1.0 = identical
    /// direction); NaN-free: zero vectors give 0.
    pub cosine: f64,
    /// Number of elements compared.
    pub n: usize,
}

impl ErrorStats {
    /// Computes statistics between `reference` and `approx`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn between(reference: &[f32], approx: &[f32]) -> ErrorStats {
        assert_eq!(reference.len(), approx.len(), "length mismatch");
        let n = reference.len();
        if n == 0 {
            return ErrorStats {
                rmse: 0.0,
                max_abs: 0.0,
                sqnr_db: f64::INFINITY,
                cosine: 0.0,
                n: 0,
            };
        }
        let mut err_sq = 0.0f64;
        let mut sig_sq = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut dot = 0.0f64;
        let mut norm_a = 0.0f64;
        let mut norm_b = 0.0f64;
        for (&r, &a) in reference.iter().zip(approx) {
            let (r, a) = (r as f64, a as f64);
            let e = a - r;
            err_sq += e * e;
            sig_sq += r * r;
            max_abs = max_abs.max(e.abs());
            dot += r * a;
            norm_a += r * r;
            norm_b += a * a;
        }
        let rmse = (err_sq / n as f64).sqrt();
        let sqnr_db = if err_sq == 0.0 {
            f64::INFINITY
        } else if sig_sq == 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * (sig_sq / err_sq).log10()
        };
        let cosine = if norm_a == 0.0 || norm_b == 0.0 {
            0.0
        } else {
            dot / (norm_a.sqrt() * norm_b.sqrt())
        };
        ErrorStats {
            rmse,
            max_abs,
            sqnr_db,
            cosine,
            n,
        }
    }

    /// Whether the approximation is "servable" at a given SQNR threshold.
    ///
    /// The paper's apps that tolerate int8 have high post-quantization
    /// quality; we proxy that with an SQNR floor (dB).
    pub fn meets_sqnr(&self, threshold_db: f64) -> bool {
        self.sqnr_db >= threshold_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_empty_input_is_rank_zero() {
        assert_eq!(nearest_rank(0.5, 0), 0);
        assert_eq!(nearest_rank_index(0.5, 0), 0);
    }

    #[test]
    fn nearest_rank_single_sample_is_always_rank_one() {
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(nearest_rank(q, 1), 1, "q={q}");
            assert_eq!(nearest_rank_index(q, 1), 0, "q={q}");
        }
    }

    #[test]
    fn nearest_rank_all_equal_samples_select_the_common_value() {
        // With all-equal data every rank yields the same value; the
        // rank itself must still be in-bounds for every q.
        let data = [3.25f64; 7];
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let i = nearest_rank_index(q, data.len());
            assert!(i < data.len());
            assert_eq!(data[i], 3.25);
        }
    }

    #[test]
    fn nearest_rank_known_positions() {
        // Classic nearest-rank: p50 of 4 samples is the 2nd, p99 the 4th.
        assert_eq!(nearest_rank(0.5, 4), 2);
        assert_eq!(nearest_rank(0.95, 4), 4);
        assert_eq!(nearest_rank(0.25, 4), 1);
        assert_eq!(nearest_rank(0.0, 4), 1);
        assert_eq!(nearest_rank(1.0, 4), 4);
        // Clamps out-of-range q instead of panicking or overflowing.
        assert_eq!(nearest_rank(-0.5, 4), 1);
        assert_eq!(nearest_rank(7.0, 4), 4);
        // NaN q degrades to rank 1 (NaN survives clamp, casts to 0).
        assert_eq!(nearest_rank(f64::NAN, 4), 1);
    }

    #[test]
    fn nearest_rank_is_monotone_in_q() {
        let n = 1000;
        let mut prev = 0;
        for i in 0..=100 {
            let r = nearest_rank(i as f64 / 100.0, n);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(prev, n);
    }

    #[test]
    fn identical_signals_have_infinite_sqnr() {
        let x = [1.0f32, -2.0, 3.0];
        let s = ErrorStats::between(&x, &x);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs, 0.0);
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db > 0.0);
        assert!((s.cosine - 1.0).abs() < 1e-12);
        assert!(s.meets_sqnr(1000.0));
    }

    #[test]
    fn known_error_values() {
        let r = [0.0f32, 0.0, 0.0, 0.0];
        let a = [1.0f32, -1.0, 1.0, -1.0];
        let s = ErrorStats::between(&r, &a);
        assert!((s.rmse - 1.0).abs() < 1e-12);
        assert_eq!(s.max_abs, 1.0);
        // Zero signal, nonzero noise → -inf dB.
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db < 0.0);
        assert_eq!(s.cosine, 0.0);
    }

    #[test]
    fn sqnr_scales_with_noise() {
        let r: Vec<f32> = (0..1000).map(|i| (i as f32 / 50.0).sin()).collect();
        let small: Vec<f32> = r.iter().map(|x| x + 0.001).collect();
        let large: Vec<f32> = r.iter().map(|x| x + 0.1).collect();
        let s_small = ErrorStats::between(&r, &small);
        let s_large = ErrorStats::between(&r, &large);
        // 100x noise amplitude = 40 dB SQNR difference.
        assert!((s_small.sqnr_db - s_large.sqnr_db - 40.0).abs() < 0.5);
    }

    #[test]
    fn empty_is_degenerate_but_defined() {
        let s = ErrorStats::between(&[], &[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.rmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ErrorStats::between(&[1.0], &[1.0, 2.0]);
    }
}
