//! Error statistics between a reference signal and an approximation.

/// Summary statistics of the error `approx - reference`.
///
/// Used to score quantization and reduced-precision serving quality in
/// experiment E9 (int8 vs bf16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Root-mean-square error.
    pub rmse: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Signal-to-quantization-noise ratio in dB
    /// (`10 log10(signal_power / noise_power)`); infinite if the error is 0.
    pub sqnr_db: f64,
    /// Cosine similarity between the two vectors (1.0 = identical
    /// direction); NaN-free: zero vectors give 0.
    pub cosine: f64,
    /// Number of elements compared.
    pub n: usize,
}

impl ErrorStats {
    /// Computes statistics between `reference` and `approx`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn between(reference: &[f32], approx: &[f32]) -> ErrorStats {
        assert_eq!(reference.len(), approx.len(), "length mismatch");
        let n = reference.len();
        if n == 0 {
            return ErrorStats {
                rmse: 0.0,
                max_abs: 0.0,
                sqnr_db: f64::INFINITY,
                cosine: 0.0,
                n: 0,
            };
        }
        let mut err_sq = 0.0f64;
        let mut sig_sq = 0.0f64;
        let mut max_abs = 0.0f64;
        let mut dot = 0.0f64;
        let mut norm_a = 0.0f64;
        let mut norm_b = 0.0f64;
        for (&r, &a) in reference.iter().zip(approx) {
            let (r, a) = (r as f64, a as f64);
            let e = a - r;
            err_sq += e * e;
            sig_sq += r * r;
            max_abs = max_abs.max(e.abs());
            dot += r * a;
            norm_a += r * r;
            norm_b += a * a;
        }
        let rmse = (err_sq / n as f64).sqrt();
        let sqnr_db = if err_sq == 0.0 {
            f64::INFINITY
        } else if sig_sq == 0.0 {
            f64::NEG_INFINITY
        } else {
            10.0 * (sig_sq / err_sq).log10()
        };
        let cosine = if norm_a == 0.0 || norm_b == 0.0 {
            0.0
        } else {
            dot / (norm_a.sqrt() * norm_b.sqrt())
        };
        ErrorStats {
            rmse,
            max_abs,
            sqnr_db,
            cosine,
            n,
        }
    }

    /// Whether the approximation is "servable" at a given SQNR threshold.
    ///
    /// The paper's apps that tolerate int8 have high post-quantization
    /// quality; we proxy that with an SQNR floor (dB).
    pub fn meets_sqnr(&self, threshold_db: f64) -> bool {
        self.sqnr_db >= threshold_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_infinite_sqnr() {
        let x = [1.0f32, -2.0, 3.0];
        let s = ErrorStats::between(&x, &x);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs, 0.0);
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db > 0.0);
        assert!((s.cosine - 1.0).abs() < 1e-12);
        assert!(s.meets_sqnr(1000.0));
    }

    #[test]
    fn known_error_values() {
        let r = [0.0f32, 0.0, 0.0, 0.0];
        let a = [1.0f32, -1.0, 1.0, -1.0];
        let s = ErrorStats::between(&r, &a);
        assert!((s.rmse - 1.0).abs() < 1e-12);
        assert_eq!(s.max_abs, 1.0);
        // Zero signal, nonzero noise → -inf dB.
        assert!(s.sqnr_db.is_infinite() && s.sqnr_db < 0.0);
        assert_eq!(s.cosine, 0.0);
    }

    #[test]
    fn sqnr_scales_with_noise() {
        let r: Vec<f32> = (0..1000).map(|i| (i as f32 / 50.0).sin()).collect();
        let small: Vec<f32> = r.iter().map(|x| x + 0.001).collect();
        let large: Vec<f32> = r.iter().map(|x| x + 0.1).collect();
        let s_small = ErrorStats::between(&r, &small);
        let s_large = ErrorStats::between(&r, &large);
        // 100x noise amplitude = 40 dB SQNR difference.
        assert!((s_small.sqnr_db - s_large.sqnr_db - 40.0).abs() < 0.5);
    }

    #[test]
    fn empty_is_degenerate_but_defined() {
        let s = ErrorStats::between(&[], &[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.rmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ErrorStats::between(&[1.0], &[1.0, 2.0]);
    }
}
