//! Nonlinearities used by the production inference apps.
//!
//! The paper's app table lists the nonlinear functions of each workload
//! (ReLU for the MLPs/CNNs, sigmoid/tanh for the LSTMs, GELU/softmax for
//! BERT). The serving-quality experiment needs faithful scalar
//! implementations; the VPU cost model in `tpu-sim` charges for them by
//! kind.

/// A nonlinear (or normalization) function a VPU evaluates elementwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Identity (no-op, e.g. final logits).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (tanh approximation, as served).
    Gelu,
}

impl Activation {
    /// Applies the function to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Gelu => {
                // tanh approximation used in production BERT serving.
                const SQRT_2_OVER_PI: f32 = 0.797_884_6;
                0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
            }
        }
    }

    /// Applies the function in place to a slice.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Relative VPU cost in vector-ops per element (transcendentals are
    /// multi-instruction sequences on a TPU VPU).
    pub const fn vpu_ops_per_element(self) -> u64 {
        match self {
            Activation::Identity => 0,
            Activation::Relu => 1,
            Activation::Sigmoid | Activation::Tanh => 6,
            Activation::Gelu => 10,
        }
    }

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Gelu => "gelu",
        }
    }
}

/// Numerically stable softmax over a slice (subtracts the max first).
///
/// Returns all-zeros for an empty slice.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Layer normalization with learned scale `gamma` and shift `beta`.
///
/// # Panics
///
/// Panics if `gamma` or `beta` lengths differ from `xs`.
pub fn layer_norm(xs: &[f32], gamma: &[f32], beta: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(xs.len(), gamma.len(), "gamma length mismatch");
    assert_eq!(xs.len(), beta.len(), "beta length mismatch");
    if xs.is_empty() {
        return Vec::new();
    }
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    xs.iter()
        .zip(gamma.iter().zip(beta))
        .map(|(&x, (&g, &b))| (x - mean) * inv * g + b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(20.0) > 0.999_99);
        assert!(Activation::Sigmoid.apply(-20.0) < 1e-5);
    }

    #[test]
    fn tanh_matches_std() {
        for x in [-2.0f32, -0.5, 0.0, 1.0, 3.0] {
            assert_eq!(Activation::Tanh.apply(x), x.tanh());
        }
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU is ~identity for large x, ~0 for very negative x.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(10.0) - 10.0).abs() < 1e-3);
        assert!(Activation::Gelu.apply(-10.0).abs() < 1e-3);
        // Reference value of the tanh approximation at 1.0 (~0.8412).
        assert!((Activation::Gelu.apply(1.0) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = [-1.0f32, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 1002.0]); // would overflow naively
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(p.iter().all(|&x| x.is_finite()));
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let p = softmax(&[3.0; 4]);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ones = [1.0f32; 4];
        let zeros = [0.0f32; 4];
        let y = layer_norm(&xs, &ones, &zeros, 1e-6);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let xs = [1.0f32, 3.0];
        let y = layer_norm(&xs, &[2.0, 2.0], &[10.0, 10.0], 1e-6);
        // normalized = [-1, 1] (approx) → scaled/shifted = [8, 12].
        assert!((y[0] - 8.0).abs() < 1e-2);
        assert!((y[1] - 12.0).abs() < 1e-2);
    }

    #[test]
    fn vpu_costs_are_monotone_in_complexity() {
        assert!(
            Activation::Identity.vpu_ops_per_element() < Activation::Relu.vpu_ops_per_element()
        );
        assert!(Activation::Relu.vpu_ops_per_element() < Activation::Tanh.vpu_ops_per_element());
        assert!(Activation::Tanh.vpu_ops_per_element() < Activation::Gelu.vpu_ops_per_element());
    }
}
