//! Brain-float 16 implemented from scratch.
//!
//! bf16 keeps fp32's 8-bit exponent and truncates the mantissa to 7 bits,
//! so its dynamic range matches fp32 — the property that let TPUv2 drop
//! loss-scaling machinery and that makes bf16 a drop-in serving format for
//! models trained in fp32 (paper Lesson 6).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 16-bit brain float: 1 sign bit, 8 exponent bits, 7 mantissa bits.
///
/// Conversion from `f32` uses round-to-nearest-even, matching TPU hardware.
/// Arithmetic promotes to `f32`, computes, and rounds back — exactly how a
/// bf16 multiplier with fp32 accumulate behaves for a single operation.
///
/// # Example
///
/// ```
/// use tpu_numerics::Bf16;
/// let a = Bf16::from_f32(3.0);
/// let b = Bf16::from_f32(0.5);
/// assert_eq!((a * b).to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Smallest positive normal value (2^-126).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Largest finite value (~3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Machine epsilon: 2^-7, the gap between 1.0 and the next value.
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        // NaN: preserve sign and set a quiet-NaN payload so the result is
        // still a NaN after truncation.
        if x.is_nan() {
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` exactly (every bf16 value is representable).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Reinterprets raw bits as a `Bf16`.
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// Whether the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7F80
    }

    /// Whether the value is neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7F80) != 0x7F80
    }

    /// Whether the sign bit is set (true for -0.0).
    pub const fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value.
    pub const fn abs(self) -> Bf16 {
        Bf16(self.0 & 0x7FFF)
    }

    /// The relative rounding error bound when converting from f32:
    /// one half ULP at 7 mantissa bits, i.e. 2^-8.
    pub const RELATIVE_ERROR_BOUND: f32 = 1.0 / 256.0;
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl PartialEq for Bf16 {
    fn eq(&self, other: &Bf16) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts a whole slice to bf16 and back, returning the lossy `f32`s.
///
/// This models what serving a fp32-trained model in bf16 does to weights.
pub fn round_trip_slice(xs: &[f32]) -> Vec<f32> {
    xs.iter().map(|&x| Bf16::from_f32(x).to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -256i32..=256 {
            let x = i as f32;
            assert_eq!(Bf16::from_f32(x).to_f32(), x, "integer {i} must be exact");
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::EPSILON.to_f32(), 1.0 / 128.0);
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), f32::MIN_POSITIVE);
        assert!(Bf16::NAN.is_nan());
        assert!(Bf16::INFINITY.is_infinite());
        assert!(Bf16::NEG_INFINITY.is_infinite());
        assert!(Bf16::MAX.is_finite());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7;
        // ties go to even (1.0 has even mantissa).
        assert_eq!(Bf16::from_f32(1.0 + 1.0 / 256.0).to_f32(), 1.0);
        // 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; even is 1+2^-6.
        assert_eq!(Bf16::from_f32(1.0 + 3.0 / 256.0).to_f32(), 1.0 + 1.0 / 64.0);
        // Just above the halfway point rounds up.
        assert_eq!(
            Bf16::from_f32(1.0 + 1.0 / 256.0 + 1.0 / 65536.0).to_f32(),
            1.0 + 1.0 / 128.0
        );
    }

    #[test]
    fn dynamic_range_matches_f32() {
        // The key bf16 property: huge and tiny f32 values survive.
        assert!(Bf16::from_f32(1e38).is_finite());
        assert!(Bf16::from_f32(1e-38).to_f32() > 0.0);
        // fp16 would overflow at 65504; bf16 must not.
        assert!(Bf16::from_f32(70000.0).is_finite());
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Bf16::from_f32(f32::MAX).is_infinite());
        assert!(!Bf16::from_f32(f32::MAX).is_sign_negative());
        assert!(Bf16::from_f32(f32::MIN).is_infinite());
        assert!(Bf16::from_f32(f32::MIN).is_sign_negative());
    }

    #[test]
    fn nan_propagates() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!((Bf16::NAN + Bf16::ONE).is_nan());
        assert!(Bf16::NAN.to_f32().is_nan());
    }

    #[test]
    fn negation_flips_sign_bit_only() {
        let x = Bf16::from_f32(2.5);
        assert_eq!((-x).to_f32(), -2.5);
        assert_eq!((-(-x)).to_bits(), x.to_bits());
        assert!((-Bf16::ZERO).is_sign_negative());
    }

    #[test]
    fn arithmetic_rounds_back() {
        let a = Bf16::from_f32(1.0);
        let b = Bf16::from_f32(1.0 / 128.0); // = epsilon, representable
        assert_eq!((a + b).to_f32(), 1.0 + 1.0 / 128.0);
        let tiny = Bf16::from_f32(1.0 / 512.0);
        // Adding a quarter-epsilon to 1.0 is lost to rounding.
        assert_eq!((a + tiny).to_f32(), 1.0);
    }

    #[test]
    fn relative_error_bound_holds_on_grid() {
        let mut x = 1.0e-10f32;
        while x < 1.0e10 {
            let err = (Bf16::from_f32(x).to_f32() - x).abs() / x;
            assert!(
                err <= Bf16::RELATIVE_ERROR_BOUND,
                "relative error {err} too large at {x}"
            );
            x *= 1.7;
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-3.5f32, -1.0, 0.0, 0.25, 1.0, 7.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    Bf16::from_f32(a).partial_cmp(&Bf16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }

    #[test]
    fn round_trip_slice_is_elementwise() {
        let xs = [0.1f32, 0.2, 0.3];
        let rt = round_trip_slice(&xs);
        assert_eq!(rt.len(), 3);
        for (orig, lossy) in xs.iter().zip(&rt) {
            assert!((orig - lossy).abs() / orig <= Bf16::RELATIVE_ERROR_BOUND);
        }
    }
}
