//! Symmetric int8 quantization, per-tensor and per-channel.
//!
//! TPUv1 served everything in int8; the paper's Lesson 6 observes that by
//! 2020 some production apps could no longer absorb quantization error (or
//! could not afford the re-validation time), so TPUv4i supports bf16. This
//! module provides the quantizer and the error statistics that experiment
//! E9 uses to classify apps as int8-servable or FP-requiring.

use std::fmt;

use crate::stats::ErrorStats;

/// Error produced by quantization routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The input slice was empty.
    EmptyInput,
    /// A non-finite value (NaN or infinity) was encountered.
    NonFinite,
    /// Per-channel quantization was asked for with a channel count that
    /// does not divide the input length.
    ChannelMismatch {
        /// Number of elements in the tensor.
        len: usize,
        /// Number of channels requested.
        channels: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::EmptyInput => write!(f, "cannot quantize an empty tensor"),
            QuantError::NonFinite => write!(f, "input contains NaN or infinity"),
            QuantError::ChannelMismatch { len, channels } => write!(
                f,
                "channel count {channels} does not divide tensor length {len}"
            ),
        }
    }
}

impl std::error::Error for QuantError {}

/// Scale parameters of a symmetric int8 quantizer (zero point fixed at 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by int8 code 127.
    pub scale: f32,
}

impl QuantParams {
    /// Fits a symmetric quantizer to the maximum absolute value of `xs`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::EmptyInput`] for empty input and
    /// [`QuantError::NonFinite`] if any value is NaN/inf.
    pub fn fit(xs: &[f32]) -> Result<QuantParams, QuantError> {
        if xs.is_empty() {
            return Err(QuantError::EmptyInput);
        }
        let mut max_abs = 0.0f32;
        for &x in xs {
            if !x.is_finite() {
                return Err(QuantError::NonFinite);
            }
            max_abs = max_abs.max(x.abs());
        }
        // An all-zero tensor quantizes with any scale; use 1.0.
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        Ok(QuantParams { scale })
    }

    /// Quantizes one value to int8 with round-to-nearest, saturating.
    pub fn quantize(self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one int8 code back to a real value.
    pub fn dequantize(self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// A quantized tensor: int8 codes plus their scale(s).
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Int8 codes, row-major.
    pub codes: Vec<i8>,
    /// One scale for per-tensor, `channels` scales for per-channel.
    pub scales: Vec<f32>,
    /// Number of channels (1 for per-tensor).
    pub channels: usize,
}

impl Quantized {
    /// Per-tensor symmetric quantization.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantParams::fit`] errors.
    pub fn per_tensor(xs: &[f32]) -> Result<Quantized, QuantError> {
        let p = QuantParams::fit(xs)?;
        Ok(Quantized {
            codes: xs.iter().map(|&x| p.quantize(x)).collect(),
            scales: vec![p.scale],
            channels: 1,
        })
    }

    /// Per-channel symmetric quantization.
    ///
    /// The tensor is interpreted as `channels` equal contiguous chunks
    /// (e.g. output channels of a weight matrix), each with its own scale.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ChannelMismatch`] if `channels` does not
    /// divide `xs.len()`, and propagates fit errors.
    pub fn per_channel(xs: &[f32], channels: usize) -> Result<Quantized, QuantError> {
        if channels == 0 || !xs.len().is_multiple_of(channels) {
            return Err(QuantError::ChannelMismatch {
                len: xs.len(),
                channels,
            });
        }
        let chunk = xs.len() / channels;
        let mut codes = Vec::with_capacity(xs.len());
        let mut scales = Vec::with_capacity(channels);
        for c in 0..channels {
            let slice = &xs[c * chunk..(c + 1) * chunk];
            let p = QuantParams::fit(slice)?;
            scales.push(p.scale);
            codes.extend(slice.iter().map(|&x| p.quantize(x)));
        }
        Ok(Quantized {
            codes,
            scales,
            channels,
        })
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize(&self) -> Vec<f32> {
        let chunk = self.codes.len() / self.channels.max(1);
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let c = if self.channels <= 1 { 0 } else { i / chunk };
                QuantParams {
                    scale: self.scales[c],
                }
                .dequantize(q)
            })
            .collect()
    }

    /// Error statistics of a quantize→dequantize round trip against `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` differs from the stored code count.
    pub fn error_vs(&self, xs: &[f32]) -> ErrorStats {
        assert_eq!(xs.len(), self.codes.len(), "length mismatch");
        ErrorStats::between(xs, &self.dequantize())
    }
}

impl QuantParams {
    /// Fits a *clipped* symmetric quantizer: the scale covers the
    /// `quantile`-th percentile of |x| instead of the maximum, trading
    /// saturation of rare outliers for resolution on the bulk — the
    /// other standard rescue (besides per-channel scales) for
    /// heavy-tailed tensors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantParams::fit`].
    pub fn fit_clipped(xs: &[f32], quantile: f64) -> Result<QuantParams, QuantError> {
        if xs.is_empty() {
            return Err(QuantError::EmptyInput);
        }
        let mut mags = Vec::with_capacity(xs.len());
        for &x in xs {
            if !x.is_finite() {
                return Err(QuantError::NonFinite);
            }
            mags.push(x.abs());
        }
        mags.sort_by(f32::total_cmp);
        let clip = mags[crate::stats::nearest_rank_index(quantile, mags.len())];
        let scale = if clip == 0.0 { 1.0 } else { clip / 127.0 };
        Ok(QuantParams { scale })
    }
}

impl Quantized {
    /// Per-tensor quantization with percentile clipping (see
    /// [`QuantParams::fit_clipped`]).
    ///
    /// # Errors
    ///
    /// Propagates fit errors.
    pub fn per_tensor_clipped(xs: &[f32], quantile: f64) -> Result<Quantized, QuantError> {
        let p = QuantParams::fit_clipped(xs, quantile)?;
        Ok(Quantized {
            codes: xs.iter().map(|&x| p.quantize(x)).collect(),
            scales: vec![p.scale],
            channels: 1,
        })
    }
}

/// One-shot helper: per-tensor round trip error of `xs`.
///
/// # Errors
///
/// Propagates quantization errors.
pub fn round_trip_error(xs: &[f32]) -> Result<ErrorStats, QuantError> {
    let q = Quantized::per_tensor(xs)?;
    Ok(q.error_vs(xs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f32 / (n - 1) as f32)
            .collect()
    }

    #[test]
    fn fit_rejects_empty_and_nonfinite() {
        assert_eq!(QuantParams::fit(&[]), Err(QuantError::EmptyInput));
        assert_eq!(
            QuantParams::fit(&[1.0, f32::NAN]),
            Err(QuantError::NonFinite)
        );
        assert_eq!(
            QuantParams::fit(&[f32::INFINITY]),
            Err(QuantError::NonFinite)
        );
    }

    #[test]
    fn all_zero_tensor_is_fine() {
        let q = Quantized::per_tensor(&[0.0, 0.0]).unwrap();
        assert_eq!(q.dequantize(), vec![0.0, 0.0]);
    }

    #[test]
    fn max_abs_maps_to_127() {
        let q = Quantized::per_tensor(&[-2.0, 1.0, 2.0]).unwrap();
        assert_eq!(q.codes, vec![-127, 64, 127]);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let xs = ramp(1001, -3.0, 3.0);
        let q = Quantized::per_tensor(&xs).unwrap();
        let step = q.scales[0];
        for (x, y) in xs.iter().zip(q.dequantize()) {
            assert!((x - y).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_on_mismatched_ranges() {
        // Channel 0 in [-1,1], channel 1 in [-100,100]: per-tensor wastes
        // almost all codes on channel 1's range.
        let mut xs = ramp(512, -1.0, 1.0);
        xs.extend(ramp(512, -100.0, 100.0));
        let pt = Quantized::per_tensor(&xs).unwrap().dequantize();
        let pc = Quantized::per_channel(&xs, 2).unwrap().dequantize();
        // The small channel (first 512 elements) is where per-channel wins:
        // per-tensor wastes its codes on the large channel's range.
        let pt_small = ErrorStats::between(&xs[..512], &pt[..512]);
        let pc_small = ErrorStats::between(&xs[..512], &pc[..512]);
        assert!(
            pc_small.rmse < pt_small.rmse / 10.0,
            "per-channel rmse {} should be much smaller than per-tensor {}",
            pc_small.rmse,
            pt_small.rmse
        );
        // The large channel is unchanged (same scale either way).
        let pt_large = ErrorStats::between(&xs[512..], &pt[512..]);
        let pc_large = ErrorStats::between(&xs[512..], &pc[512..]);
        assert!((pt_large.rmse - pc_large.rmse).abs() < 1e-6);
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let err = Quantized::per_channel(&[1.0, 2.0, 3.0], 2).unwrap_err();
        assert_eq!(
            err,
            QuantError::ChannelMismatch {
                len: 3,
                channels: 2
            }
        );
        assert!(Quantized::per_channel(&[1.0], 0).is_err());
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            QuantError::EmptyInput,
            QuantError::NonFinite,
            QuantError::ChannelMismatch {
                len: 3,
                channels: 2,
            },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn clipped_fit_ignores_outliers() {
        // 4095 small values plus one huge outlier: the max-fit scale is
        // dominated by the outlier, the 99.9%-clipped one is not.
        let mut xs = ramp(4095, -0.01, 0.01);
        xs.push(10.0);
        let max_fit = QuantParams::fit(&xs).unwrap();
        let clipped = QuantParams::fit_clipped(&xs, 0.999).unwrap();
        assert!((max_fit.scale - 10.0 / 127.0).abs() < 1e-9);
        assert!(clipped.scale < max_fit.scale / 100.0);
        // The clipped quantizer saturates the outlier...
        assert_eq!(clipped.quantize(10.0), 127);
        // ...and resolves the bulk far better.
        let q_max = Quantized::per_tensor(&xs).unwrap().dequantize();
        let q_clip = Quantized::per_tensor_clipped(&xs, 0.999)
            .unwrap()
            .dequantize();
        let bulk_err = |deq: &[f32]| -> f64 {
            xs[..4095]
                .iter()
                .zip(deq)
                .map(|(a, b)| ((a - b) as f64).abs())
                .sum::<f64>()
        };
        assert!(bulk_err(&q_clip) < bulk_err(&q_max) / 20.0);
    }

    #[test]
    fn clipped_fit_edge_cases() {
        assert_eq!(
            QuantParams::fit_clipped(&[], 0.99),
            Err(QuantError::EmptyInput)
        );
        assert_eq!(
            QuantParams::fit_clipped(&[f32::NAN], 0.99),
            Err(QuantError::NonFinite)
        );
        // quantile 1.0 == plain max fit.
        let xs = ramp(100, -3.0, 3.0);
        assert_eq!(
            QuantParams::fit_clipped(&xs, 1.0).unwrap(),
            QuantParams::fit(&xs).unwrap()
        );
        // All-zero is fine.
        assert_eq!(QuantParams::fit_clipped(&[0.0; 4], 0.5).unwrap().scale, 1.0);
    }

    #[test]
    fn sqnr_improves_with_narrow_distributions() {
        // Uniform full-range data has the best SQNR an 8-bit code allows
        // (~50 dB); heavy-tailed data (mostly small values with one large
        // outlier) fares much worse — the effect that breaks int8 serving
        // for some production apps.
        let uniform = ramp(4096, -1.0, 1.0);
        let mut outliers: Vec<f32> = ramp(4095, -0.01, 0.01);
        outliers.push(1.0);
        let u = round_trip_error(&uniform).unwrap();
        let o = round_trip_error(&outliers).unwrap();
        assert!(u.sqnr_db > 45.0, "uniform sqnr {}", u.sqnr_db);
        assert!(o.sqnr_db < u.sqnr_db - 10.0, "outlier sqnr {}", o.sqnr_db);
    }
}
