//! Architectural data types supported by the TPU generations.

use std::fmt;

/// A data type a TPU functional unit can operate on.
///
/// The set mirrors the types the paper discusses: TPUv1 is an int8 design;
/// TPUv2/v3 compute in bf16 with fp32 accumulation; TPUv4i supports int8
/// *and* bf16 because "some inference tasks require floating point"
/// (Lesson 6).
///
/// # Example
///
/// ```
/// use tpu_numerics::DType;
/// assert!(DType::Bf16.is_float());
/// assert_eq!(DType::Int8.size_bytes(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 8-bit signed integer (quantized inference).
    Int8,
    /// 32-bit signed integer (accumulators for int8 MACs).
    Int32,
    /// Brain float: 1 sign, 8 exponent, 7 mantissa bits.
    Bf16,
    /// IEEE 754 half precision (present on the GPU baseline, not TPUs).
    Fp16,
    /// IEEE 754 single precision.
    Fp32,
}

impl DType {
    /// All types, in ascending width order for a given class.
    pub const ALL: [DType; 5] = [
        DType::Int8,
        DType::Int32,
        DType::Bf16,
        DType::Fp16,
        DType::Fp32,
    ];

    /// Storage size in bytes of one element.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::Int8 => 1,
            DType::Bf16 | DType::Fp16 => 2,
            DType::Int32 | DType::Fp32 => 4,
        }
    }

    /// Whether this is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::Bf16 | DType::Fp16 | DType::Fp32)
    }

    /// Whether this is an integer type.
    pub const fn is_int(self) -> bool {
        !self.is_float()
    }

    /// The accumulator type a TPU MXU uses when multiplying in `self`.
    ///
    /// bf16 multiplies accumulate in fp32; int8 multiplies accumulate in
    /// int32. Wider types accumulate in themselves.
    pub const fn accumulator(self) -> DType {
        match self {
            DType::Int8 => DType::Int32,
            DType::Bf16 | DType::Fp16 => DType::Fp32,
            DType::Int32 => DType::Int32,
            DType::Fp32 => DType::Fp32,
        }
    }

    /// Short lowercase name, e.g. `"bf16"`.
    pub const fn name(self) -> &'static str {
        match self {
            DType::Int8 => "int8",
            DType::Int32 => "int32",
            DType::Bf16 => "bf16",
            DType::Fp16 => "fp16",
            DType::Fp32 => "fp32",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_correct() {
        assert_eq!(DType::Int8.size_bytes(), 1);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::Fp16.size_bytes(), 2);
        assert_eq!(DType::Int32.size_bytes(), 4);
        assert_eq!(DType::Fp32.size_bytes(), 4);
    }

    #[test]
    fn float_classification() {
        assert!(DType::Bf16.is_float());
        assert!(DType::Fp32.is_float());
        assert!(DType::Fp16.is_float());
        assert!(DType::Int8.is_int());
        assert!(DType::Int32.is_int());
        assert!(!DType::Int8.is_float());
    }

    #[test]
    fn accumulators_widen() {
        assert_eq!(DType::Int8.accumulator(), DType::Int32);
        assert_eq!(DType::Bf16.accumulator(), DType::Fp32);
        assert_eq!(DType::Fp32.accumulator(), DType::Fp32);
        for dt in DType::ALL {
            assert!(dt.accumulator().size_bytes() >= dt.size_bytes());
        }
    }

    #[test]
    fn display_matches_name() {
        for dt in DType::ALL {
            assert_eq!(format!("{dt}"), dt.name());
            assert!(!dt.name().is_empty());
        }
    }
}
