//! Numeric formats and quantization machinery for TPU-generation modeling.
//!
//! This crate is the numerics substrate of the TPUv4i reproduction. It
//! implements, from scratch, the data formats the paper's Lesson 6 ("some
//! inference apps require floating point") and Lesson 4 ("backwards ML
//! compatibility") turn on:
//!
//! - [`Bf16`]: the brain-float 16 format used by TPUv2+ matrix units
//!   (1 sign, 8 exponent, 7 mantissa bits), with round-to-nearest-even
//!   conversion from `f32`.
//! - [`quant`]: symmetric int8 quantization (per-tensor and per-channel)
//!   with error statistics, used to decide which production apps can be
//!   served in int8 and which need floating point.
//! - [`accum`]: floating-point accumulation-order emulation. TPU MXUs
//!   accumulate in fp32 in a fixed systolic order; *backwards ML
//!   compatibility* means a newer chip reproduces the older chip's
//!   accumulation order bit-for-bit so models deploy without re-validation.
//! - [`activation`]: the nonlinearities of the production apps (ReLU, GELU,
//!   sigmoid, tanh, softmax, layer norm).
//! - [`tensor`]: a minimal row-major `f32` tensor with matmul, enough to
//!   run quality experiments without pulling in an array library.
//!
//! # Example
//!
//! ```
//! use tpu_numerics::{Bf16, DType};
//!
//! let x = Bf16::from_f32(1.0 + 1.0 / 256.0);
//! // bf16 has 7 mantissa bits: 1 + 2^-8 rounds back to 1.0
//! assert_eq!(x.to_f32(), 1.0);
//! assert_eq!(DType::Bf16.size_bytes(), 2);
//! ```

pub mod accum;
pub mod activation;
pub mod bf16;
pub mod dtype;
pub mod quant;
pub mod stats;
pub mod tensor;

pub use accum::{dot_f32, AccumOrder};
pub use bf16::Bf16;
pub use dtype::DType;
pub use quant::{QuantError, QuantParams, Quantized};
pub use stats::ErrorStats;
pub use tensor::Tensor;
