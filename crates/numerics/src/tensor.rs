//! A minimal row-major `f32` tensor for quality experiments.
//!
//! Deliberately tiny: shape bookkeeping, element access, matmul with a
//! selectable accumulation order, and random fills. It exists so the
//! int8-vs-bf16 experiment (E9) and the backwards-compatibility
//! experiment (E14) can run real arithmetic without an array dependency.

use std::fmt;

use crate::accum::{self, AccumOrder};

/// A dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let n = checked_len(shape);
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        let n = checked_len(shape);
        assert_eq!(data.len(), n, "data length does not match shape");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Fills with a deterministic pseudo-random pattern in `[-scale, scale]`.
    ///
    /// Uses a splitmix64 stream so experiments are reproducible without a
    /// `rand` dependency in the library itself.
    pub fn random(shape: &[usize], seed: u64, scale: f32) -> Tensor {
        let n = checked_len(shape);
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let data = (0..n)
            .map(|_| {
                state = splitmix64(&mut state);
                // Map the top 24 bits to [-1, 1).
                let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                (u * 2.0 - 1.0) * scale
            })
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.len(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix multiplication `self @ rhs` with the given fp32 accumulation
    /// order (to emulate a particular generation's MXU numerics).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `rhs` is `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor, order: AccumOrder) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions must match");
        let mut out = Tensor::zeros(&[m, n]);
        // Gather rhs columns once to keep the inner loop contiguous.
        let mut col = vec![0.0f32; k];
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = rhs.data[i * n + j];
            }
            for i in 0..m {
                out.data[i * n + j] = accum::dot_f32(self.row(i), &col, order);
            }
        }
        out
    }

    /// Like [`Tensor::matmul`] but with bf16 multiplication (fp32
    /// accumulate) — the TPUv2+ datapath.
    ///
    /// # Panics
    ///
    /// Same as [`Tensor::matmul`].
    pub fn matmul_bf16(&self, rhs: &Tensor, order: AccumOrder) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions must match");
        let mut out = Tensor::zeros(&[m, n]);
        let mut col = vec![0.0f32; k];
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = rhs.data[i * n + j];
            }
            for i in 0..m {
                out.data[i * n + j] = accum::dot_bf16(self.row(i), &col, order);
            }
        }
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "shape must have at least one dimension");
    for &d in shape {
        assert!(d > 0, "zero dimension in shape");
    }
    shape.iter().product()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(&[8, 8], 42, 0.5);
        let b = Tensor::random(&[8, 8], 42, 0.5);
        let c = Tensor::random(&[8, 8], 43, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|&x| x.abs() <= 0.5));
        // Not degenerate: values differ.
        assert!(a.data().iter().any(|&x| x != a.data()[0]));
    }

    #[test]
    fn matmul_identity() {
        let x = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let y = x.matmul(&id, AccumOrder::Sequential);
        assert_eq!(y, x);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b, AccumOrder::Sequential);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_bf16_close_but_lossy() {
        let a = Tensor::random(&[16, 64], 1, 1.0);
        let b = Tensor::random(&[64, 16], 2, 1.0);
        let hi = a.matmul(&b, AccumOrder::Sequential);
        let lo = a.matmul_bf16(&b, AccumOrder::Sequential);
        let stats = crate::stats::ErrorStats::between(hi.data(), lo.data());
        assert!(stats.sqnr_db > 30.0, "bf16 matmul too lossy: {stats:?}");
        assert!(stats.sqnr_db < 120.0, "bf16 matmul suspiciously exact");
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b, AccumOrder::Sequential);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dimension_rejected() {
        Tensor::zeros(&[2, 0]);
    }
}
