//! Property-based tests for the numerics substrate.

use proptest::prelude::*;
use tpu_numerics::accum::{bit_exact, dot_f32, sum_f32, AccumOrder};
use tpu_numerics::activation::softmax;
use tpu_numerics::{Bf16, ErrorStats, QuantParams, Quantized};

fn finite_f32() -> impl Strategy<Value = f32> {
    // Stay within bf16's comfortable range to avoid inf-vs-max edge noise.
    prop::num::f32::NORMAL.prop_map(|x| x.clamp(-1e30, 1e30))
}

/// Exhaustive, not property-based: every one of the 65536 bf16 bit
/// patterns round-trips through f32 (NaNs stay NaN, everything else is
/// bit-exact) — the whole format verified, not a sample.
#[test]
fn bf16_exhaustive_round_trip() {
    for bits in 0..=u16::MAX {
        let x = Bf16::from_bits(bits);
        if x.is_nan() {
            assert!(Bf16::from_f32(x.to_f32()).is_nan(), "bits {bits:#06x}");
        } else {
            assert_eq!(
                Bf16::from_f32(x.to_f32()).to_bits(),
                bits,
                "bits {bits:#06x}"
            );
        }
    }
}

proptest! {
    /// Every bf16 bit pattern that is not NaN round-trips exactly through f32.
    #[test]
    fn bf16_bits_round_trip(bits in any::<u16>()) {
        let x = Bf16::from_bits(bits);
        if !x.is_nan() {
            let back = Bf16::from_f32(x.to_f32());
            prop_assert_eq!(back.to_bits(), bits);
        } else {
            prop_assert!(Bf16::from_f32(x.to_f32()).is_nan());
        }
    }

    /// Conversion from f32 keeps relative error within half an ULP (2^-8).
    #[test]
    fn bf16_relative_error_bound(x in finite_f32()) {
        let y = Bf16::from_f32(x);
        if y.is_finite() && x != 0.0 {
            let rel = ((y.to_f32() - x) / x).abs();
            prop_assert!(rel <= Bf16::RELATIVE_ERROR_BOUND,
                "x={x} y={} rel={rel}", y.to_f32());
        }
    }

    /// bf16 conversion is monotone: a <= b implies bf16(a) <= bf16(b).
    #[test]
    fn bf16_is_monotone(a in finite_f32(), b in finite_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo) <= Bf16::from_f32(hi));
    }

    /// Quantize→dequantize error never exceeds half a quantization step.
    #[test]
    fn quant_round_trip_error_bound(
        xs in prop::collection::vec(-1000.0f32..1000.0, 1..200)
    ) {
        let q = Quantized::per_tensor(&xs).unwrap();
        let step = q.scales[0];
        for (x, y) in xs.iter().zip(q.dequantize()) {
            prop_assert!((x - y).abs() <= step / 2.0 + step * 1e-4);
        }
    }

    /// Quantized codes always lie in [-127, 127].
    #[test]
    fn quant_codes_saturate(xs in prop::collection::vec(-1e6f32..1e6, 1..100)) {
        let q = Quantized::per_tensor(&xs).unwrap();
        prop_assert!(q.codes.iter().all(|&c| (-127..=127).contains(&c)));
    }

    /// The fitted scale maps the max-abs element to exactly +/-127.
    #[test]
    fn quant_scale_uses_full_range(
        xs in prop::collection::vec(-100.0f32..100.0, 1..100)
    ) {
        let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        prop_assume!(max_abs > 0.0);
        let p = QuantParams::fit(&xs).unwrap();
        prop_assert!((p.scale - max_abs / 127.0).abs() < 1e-9);
    }

    /// All accumulation orders agree to within a loose relative tolerance.
    #[test]
    fn accum_orders_agree_approximately(
        xs in prop::collection::vec(-100.0f32..100.0, 1..300)
    ) {
        let seq = sum_f32(&xs, AccumOrder::Sequential) as f64;
        let tree = sum_f32(&xs, AccumOrder::PairwiseTree) as f64;
        let chunk = sum_f32(&xs, AccumOrder::Chunked { width: 128 }) as f64;
        let magnitude: f64 = xs.iter().map(|&x| x.abs() as f64).sum::<f64>().max(1.0);
        prop_assert!((seq - tree).abs() / magnitude < 1e-4);
        prop_assert!((seq - chunk).abs() / magnitude < 1e-4);
    }

    /// An order is always bit-exact with itself (determinism).
    #[test]
    fn accum_self_bit_exact(
        pairs in prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 1..256),
        width in 1usize..300
    ) {
        let (a, b): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let order = AccumOrder::Chunked { width };
        prop_assert!(bit_exact(&a, &b, order, order));
    }

    /// dot(a, b) == dot(b, a) for every order (products commute).
    #[test]
    fn dot_is_commutative(
        pairs in prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 1..128)
    ) {
        let (a, b): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        for order in [AccumOrder::Sequential, AccumOrder::PairwiseTree] {
            prop_assert_eq!(
                dot_f32(&a, &b, order).to_bits(),
                dot_f32(&b, &a, order).to_bits()
            );
        }
    }

    /// Softmax outputs are a probability distribution for any finite input.
    #[test]
    fn softmax_is_distribution(xs in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// ErrorStats: rmse is zero iff signals match; cosine is within [-1, 1].
    #[test]
    fn error_stats_basics(xs in prop::collection::vec(-100.0f32..100.0, 1..100)) {
        let s = ErrorStats::between(&xs, &xs);
        prop_assert_eq!(s.rmse, 0.0);
        let shifted: Vec<f32> = xs.iter().map(|&x| x + 1.0).collect();
        let s2 = ErrorStats::between(&xs, &shifted);
        prop_assert!(s2.rmse > 0.0);
        prop_assert!(s2.cosine <= 1.0 + 1e-9 && s2.cosine >= -1.0 - 1e-9);
    }
}
