//! Execution traces: who ran what, where, when.
//!
//! [`crate::Simulator::run_traced`] records one [`TraceEntry`] per step
//! with the unit that executed it and its start/end times — enough to
//! audit the schedule (no unit ever runs two steps at once) and to render
//! a text Gantt chart of the pipeline, the tool used to eyeball why a
//! plan is memory- or compute-bound.

use std::fmt::Write as _;

use tpu_telemetry::{SpanPhase, TelemetryEvent, Track};

use crate::plan::StepId;
use crate::report::Resource;

/// One executed step.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The step.
    pub step: StepId,
    /// Its tag (from the plan).
    pub tag: String,
    /// Which resource class ran it.
    pub resource: Resource,
    /// Which unit of that class (0-based within the pool).
    pub unit: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A whole run's entries, in completion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// The entries.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Entries for one resource class, sorted by start time.
    pub fn for_resource(&self, resource: Resource) -> Vec<&TraceEntry> {
        let mut v: Vec<&TraceEntry> = self
            .entries
            .iter()
            .filter(|e| e.resource == resource)
            .collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Verifies that no unit ever overlaps two steps.
    ///
    /// Returns the first offending pair if the schedule is inconsistent
    /// (a simulator bug, surfaced for tests).
    pub fn find_overlap(&self) -> Option<(StepId, StepId)> {
        for resource in Resource::ALL {
            let entries = self.for_resource(resource);
            // Group by unit.
            let max_unit = entries.iter().map(|e| e.unit).max().unwrap_or(0);
            for unit in 0..=max_unit {
                let mut last_end = f64::NEG_INFINITY;
                let mut last_id = StepId(0);
                for e in entries.iter().filter(|e| e.unit == unit) {
                    if e.start < last_end - 1e-12 {
                        return Some((last_id, e.step));
                    }
                    last_end = e.end;
                    last_id = e.step;
                }
            }
        }
        None
    }

    /// The makespan covered by the trace.
    pub fn makespan(&self) -> f64 {
        self.entries.iter().map(|e| e.end).fold(0.0, f64::max)
    }

    /// Converts the trace to telemetry span events on the unified model:
    /// one `(resource, unit)` pair per [`Track`], one begin/end pair per
    /// entry (span id = entry order, so concurrent same-tag steps stay
    /// distinct), sorted by time with a stable tiebreak. The result
    /// feeds the same exporters as the serving fleet's recorder.
    pub fn to_events(&self) -> Vec<TelemetryEvent> {
        let mut events = Vec::with_capacity(self.entries.len() * 2);
        for (i, e) in self.entries.iter().enumerate() {
            let track = Track {
                name: e.resource.name(),
                index: e.unit as u32,
            };
            let name: std::borrow::Cow<'static, str> = if e.tag.is_empty() {
                format!("step{}", e.step.0).into()
            } else {
                e.tag.clone().into()
            };
            let arg = e.step.0 as i64;
            events.push(TelemetryEvent {
                t_s: e.start,
                track,
                phase: SpanPhase::Begin,
                name: name.clone(),
                id: i as u64,
                arg,
            });
            events.push(TelemetryEvent {
                t_s: e.end,
                track,
                phase: SpanPhase::End,
                name,
                id: i as u64,
                arg,
            });
        }
        // Stable sort by time only: each entry pushed Begin-then-End, so
        // zero-duration spans keep their begin first at equal stamps.
        events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        events
    }

    /// Chrome-trace (Perfetto) JSON for this trace, via the unified
    /// telemetry exporter.
    pub fn chrome_trace_json(&self) -> String {
        tpu_telemetry::chrome_trace_json(&self.to_events())
    }

    /// Plain-text timeline for this trace, via the unified telemetry
    /// renderer.
    pub fn render_text(&self) -> String {
        tpu_telemetry::render_text(&self.to_events())
    }

    /// Renders a text Gantt chart, `width` columns wide.
    ///
    /// One row per (resource, unit) that executed anything; `#` marks
    /// busy time.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.clamp(20, 400);
        let total = self.makespan();
        let mut out = String::new();
        if total <= 0.0 {
            out.push_str("(empty trace)\n");
            return out;
        }
        let _ = writeln!(out, "makespan {:.3} ms", total * 1e3);
        for resource in Resource::ALL {
            let entries = self.for_resource(resource);
            if entries.is_empty() {
                continue;
            }
            let max_unit = entries.iter().map(|e| e.unit).max().unwrap_or(0);
            for unit in 0..=max_unit {
                let mine: Vec<&&TraceEntry> = entries.iter().filter(|e| e.unit == unit).collect();
                if mine.is_empty() {
                    continue;
                }
                let mut row = vec![b'.'; width];
                for e in &mine {
                    let a = ((e.start / total) * width as f64).floor() as usize;
                    let b = ((e.end / total) * width as f64).ceil() as usize;
                    for c in row.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                        *c = b'#';
                    }
                }
                let _ = writeln!(
                    out,
                    "{:>5}[{unit}] |{}|",
                    resource.name(),
                    String::from_utf8(row).expect("ascii")
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(step: u32, resource: Resource, unit: usize, start: f64, end: f64) -> TraceEntry {
        TraceEntry {
            step: StepId(step),
            tag: String::new(),
            resource,
            unit,
            start,
            end,
        }
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::default();
        t.entries.push(entry(0, Resource::Mxu, 0, 0.0, 1.0));
        t.entries.push(entry(1, Resource::Mxu, 0, 1.0, 2.0));
        t.entries.push(entry(2, Resource::Mxu, 1, 0.5, 1.5)); // other unit
        assert_eq!(t.find_overlap(), None);
        t.entries.push(entry(3, Resource::Mxu, 0, 1.5, 2.5)); // overlaps #1
        assert_eq!(t.find_overlap(), Some((StepId(1), StepId(3))));
    }

    #[test]
    fn gantt_renders_rows() {
        let mut t = Trace::default();
        t.entries.push(entry(0, Resource::Mxu, 0, 0.0, 0.5));
        t.entries.push(entry(1, Resource::Dma, 0, 0.5, 1.0));
        let g = t.render_gantt(40);
        assert!(g.contains("mxu[0]"));
        assert!(g.contains("dma[0]"));
        assert!(g.contains('#'));
        assert!(g.contains("makespan"));
    }

    #[test]
    fn empty_trace_renders() {
        assert!(Trace::default().render_gantt(50).contains("empty"));
        assert_eq!(Trace::default().makespan(), 0.0);
        assert_eq!(Trace::default().find_overlap(), None);
    }

    #[test]
    fn to_events_is_balanced_monotone_and_exports() {
        let mut t = Trace::default();
        t.entries.push(entry(0, Resource::Mxu, 0, 0.0, 0.5));
        t.entries.push(entry(1, Resource::Dma, 1, 0.25, 0.75));
        t.entries.push(entry(2, Resource::Mxu, 0, 0.5, 0.5)); // zero-duration
        let events = t.to_events();
        assert_eq!(events.len(), 6);
        assert_eq!(tpu_telemetry::span_balance(&events), Ok(3));
        for w in events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s, "timestamps must be monotone");
        }
        let json = t.chrome_trace_json();
        // 2 thread_name metadata records + 6 span edges.
        assert_eq!(tpu_telemetry::validate_chrome_json(&json), Ok(8));
        assert!(json.contains("\"mxu0\""));
        assert!(json.contains("\"dma1\""));
        let text = t.render_text();
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("step0"));
    }

    #[test]
    fn to_events_uses_tags_when_present() {
        let mut t = Trace::default();
        t.entries.push(TraceEntry {
            step: StepId(4),
            tag: "matmul.fwd".to_owned(),
            resource: Resource::Vpu,
            unit: 0,
            start: 0.0,
            end: 1.0,
        });
        let events = t.to_events();
        assert!(events.iter().all(|e| e.name == "matmul.fwd"));
        assert!(events.iter().all(|e| e.arg == 4));
    }

    #[test]
    fn for_resource_sorts_by_start() {
        let mut t = Trace::default();
        t.entries.push(entry(0, Resource::Vpu, 0, 2.0, 3.0));
        t.entries.push(entry(1, Resource::Vpu, 0, 0.0, 1.0));
        let v = t.for_resource(Resource::Vpu);
        assert_eq!(v[0].step, StepId(1));
        assert_eq!(v[1].step, StepId(0));
    }
}
