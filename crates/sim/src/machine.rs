//! Timing and energy formulas for one chip configuration.
//!
//! The machine model turns a [`StepKind`](crate::plan::StepKind) into a
//! `(duration, energy)` pair for a given [`ChipConfig`]. The engine layers
//! resource contention on top.

use tpu_arch::{ChipConfig, MemLevel};
use tpu_numerics::DType;

/// Cost of executing one step in isolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Time the owning unit (MXU/VPU/DMA engine/ICI link) is busy, seconds.
    pub unit_seconds: f64,
    /// Time a serialized memory channel is busy, seconds (0 when the step
    /// uses no serialized channel).
    pub channel_seconds: f64,
    /// Dynamic energy, joules.
    pub energy_joules: f64,
}

/// The timing/energy model for one chip.
#[derive(Debug, Clone)]
pub struct Machine {
    chip: ChipConfig,
}

impl Machine {
    /// Wraps a chip configuration.
    pub fn new(chip: ChipConfig) -> Machine {
        Machine { chip }
    }

    /// The wrapped configuration.
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Cycle time in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.chip.clock_hz
    }

    /// MXU cycles for a `rows x inner @ inner x cols` tile group.
    ///
    /// Weight-stationary systolic model: the array is `d x d`; the
    /// operand is folded into `ceil(inner/d) * ceil(cols/d)` tiles. With
    /// resident (preloaded) weights the cost is one pipeline fill plus
    /// `rows` streaming cycles per tile; when weights must be pushed per
    /// tile, pushing (d cycles) double-buffers against streaming, so each
    /// tile costs `max(rows, d)`. int8 streams at `int8_speedup` rows per
    /// cycle on chips with native int8.
    pub fn mxu_cycles(
        &self,
        rows: u64,
        cols: u64,
        inner: u64,
        dtype: DType,
        weights_resident: bool,
    ) -> f64 {
        let d = self.chip.mxu_dim as u64;
        let tiles = inner.div_ceil(d) * cols.div_ceil(d);
        let speed = if dtype == DType::Int8 && self.chip.native_types.contains(&DType::Int8) {
            self.chip.int8_speedup
        } else {
            1.0
        };
        let rows_eff = rows as f64 / speed;
        // Weight pushes move bytes: int8 tiles load in half the cycles.
        let push_cycles = d as f64 / speed;
        let per_tile = if weights_resident {
            rows_eff
        } else {
            rows_eff.max(push_cycles)
        };
        d as f64 + tiles as f64 * per_tile
    }

    /// Duration and energy of a step kind, ignoring contention.
    pub fn step_cost(&self, kind: &crate::plan::StepKind) -> StepCost {
        use crate::plan::StepKind;
        let e = self.chip.node.energy();
        match *kind {
            StepKind::DmaIn { from, bytes } | StepKind::DmaOut { to: from, bytes } => {
                let spec = self.chip.mem(from).copied().unwrap_or(self.chip.hbm);
                let channel_seconds = bytes as f64 / spec.bandwidth_bps;
                let unit_seconds = spec.latency_ns * 1e-9 + channel_seconds;
                // Energy: source/destination channel plus the VMEM side.
                let energy_joules =
                    spec.transfer_joules(bytes) + self.chip.vmem.transfer_joules(bytes);
                StepCost {
                    unit_seconds,
                    channel_seconds,
                    energy_joules,
                }
            }
            StepKind::Mxu {
                rows,
                cols,
                inner,
                dtype,
                weights_resident,
            } => {
                let cycles = self.mxu_cycles(rows, cols, inner, dtype, weights_resident);
                let macs = (rows * cols * inner) as f64;
                let pj = match dtype {
                    DType::Int8 => e.mac_int8_pj,
                    DType::Fp32 => e.mac_fp32_pj,
                    _ => e.mac_bf16_pj,
                };
                StepCost {
                    unit_seconds: cycles * self.cycle_seconds(),
                    channel_seconds: 0.0,
                    energy_joules: macs * pj * 1e-12,
                }
            }
            StepKind::Vpu {
                elements,
                ops_per_element,
            } => {
                let ops = (elements * ops_per_element) as f64;
                let throughput = (self.chip.vpu_lanes as f64) * (self.chip.vpu_sublanes as f64);
                let cycles = ops / throughput;
                // A VPU ALU op costs roughly a third of an fp32 MAC.
                StepCost {
                    unit_seconds: cycles * self.cycle_seconds(),
                    channel_seconds: 0.0,
                    energy_joules: ops * (e.mac_fp32_pj / 3.0) * 1e-12,
                }
            }
            StepKind::Ici { bytes } => {
                let bw = (self.chip.ici_gbps * 1e9).max(1.0);
                let seconds = bytes as f64 / bw + 1e-6; // ~1 us link latency
                StepCost {
                    unit_seconds: seconds,
                    channel_seconds: 0.0,
                    // Off-chip SerDes energy comparable to HBM per byte.
                    energy_joules: bytes as f64 * e.hbm_pj_per_byte * 1e-12,
                }
            }
        }
    }

    /// Which serialized channel (if any) a step occupies.
    pub fn channel_of(&self, kind: &crate::plan::StepKind) -> Option<MemLevel> {
        match kind.channel_bytes() {
            Some((MemLevel::Hbm, _)) => Some(MemLevel::Hbm),
            Some((MemLevel::Cmem, _)) => Some(MemLevel::Cmem),
            // VMEM/SMEM are multi-banked; we do not serialize them.
            _ => None,
        }
    }

    /// Unit-pool sizes `(mxu, vpu, dma, ici)`.
    pub fn pool_sizes(&self) -> (usize, usize, usize, usize) {
        (
            (self.chip.cores * self.chip.mxus_per_core) as usize,
            self.chip.cores as usize,
            self.chip.dma_engines.max(1) as usize,
            self.chip.ici_links.max(1) as usize,
        )
    }

    /// Static power in watts, charged for the whole makespan.
    pub fn static_watts(&self) -> f64 {
        self.chip.idle_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StepKind;
    use tpu_arch::catalog;

    fn v4i() -> Machine {
        Machine::new(catalog::tpu_v4i())
    }

    #[test]
    fn mxu_cycles_single_tile_resident() {
        let m = v4i();
        // One 128x128x128 tile with resident weights: fill + 128 rows.
        let c = m.mxu_cycles(128, 128, 128, DType::Bf16, true);
        assert_eq!(c, 128.0 + 128.0);
    }

    #[test]
    fn mxu_cycles_tiling_rounds_up() {
        let m = v4i();
        // 129 cols → 2 column tiles even though barely over.
        let c1 = m.mxu_cycles(128, 128, 128, DType::Bf16, true);
        let c2 = m.mxu_cycles(128, 129, 128, DType::Bf16, true);
        assert!(c2 > 1.9 * (c1 - 128.0), "{c2} vs {c1}");
    }

    #[test]
    fn int8_streams_twice_as_fast_on_v4i() {
        let m = v4i();
        let bf16 = m.mxu_cycles(1024, 128, 128, DType::Bf16, true);
        let int8 = m.mxu_cycles(1024, 128, 128, DType::Int8, true);
        // Fill cycles are shared; streaming halves.
        assert!((int8 - (128.0 + 512.0)).abs() < 1e-9, "{int8}");
        assert!(bf16 > int8);
    }

    #[test]
    fn int8_has_no_speedup_on_v3() {
        let m = Machine::new(catalog::tpu_v3());
        // TPUv3 has no native int8: int8 runs at bf16 rate.
        let bf16 = m.mxu_cycles(256, 128, 128, DType::Bf16, true);
        let int8 = m.mxu_cycles(256, 128, 128, DType::Int8, true);
        assert_eq!(bf16, int8);
    }

    #[test]
    fn nonresident_weights_cost_more_for_short_streams() {
        let m = v4i();
        let resident = m.mxu_cycles(16, 512, 512, DType::Bf16, true);
        let streamed = m.mxu_cycles(16, 512, 512, DType::Bf16, false);
        // 16 rows < 128 push cycles: weight pushes dominate.
        assert!(streamed > 4.0 * resident, "{streamed} vs {resident}");
        // For long streams the push hides behind streaming.
        let r2 = m.mxu_cycles(4096, 512, 512, DType::Bf16, true);
        let s2 = m.mxu_cycles(4096, 512, 512, DType::Bf16, false);
        assert_eq!(r2, s2);
    }

    #[test]
    fn dma_cost_uses_channel_bandwidth() {
        let m = v4i();
        let bytes = 614_000_000; // one second of HBM bandwidth... at 614 GB/s
        let cost = m.step_cost(&StepKind::DmaIn {
            from: tpu_arch::MemLevel::Hbm,
            bytes,
        });
        assert!((cost.channel_seconds - 0.001).abs() < 1e-5);
        assert!(cost.unit_seconds > cost.channel_seconds); // latency added
        assert!(cost.energy_joules > 0.0);
    }

    #[test]
    fn cmem_dma_is_faster_and_cheaper_than_hbm() {
        let m = v4i();
        let hbm = m.step_cost(&StepKind::DmaIn {
            from: tpu_arch::MemLevel::Hbm,
            bytes: 1 << 24,
        });
        let cmem = m.step_cost(&StepKind::DmaIn {
            from: tpu_arch::MemLevel::Cmem,
            bytes: 1 << 24,
        });
        assert!(cmem.channel_seconds < hbm.channel_seconds);
        assert!(cmem.energy_joules < hbm.energy_joules / 2.0);
    }

    #[test]
    fn channel_assignment() {
        let m = v4i();
        assert_eq!(
            m.channel_of(&StepKind::DmaIn {
                from: tpu_arch::MemLevel::Hbm,
                bytes: 1
            }),
            Some(tpu_arch::MemLevel::Hbm)
        );
        assert_eq!(
            m.channel_of(&StepKind::DmaOut {
                to: tpu_arch::MemLevel::Cmem,
                bytes: 1
            }),
            Some(tpu_arch::MemLevel::Cmem)
        );
        assert_eq!(
            m.channel_of(&StepKind::Vpu {
                elements: 1,
                ops_per_element: 1
            }),
            None
        );
    }

    #[test]
    fn pool_sizes_match_config() {
        let m = v4i();
        let (mxu, vpu, dma, ici) = m.pool_sizes();
        assert_eq!(mxu, 4);
        assert_eq!(vpu, 1);
        assert_eq!(dma, 8);
        assert_eq!(ici, 2);
    }

    #[test]
    fn vpu_cost_scales_with_ops() {
        let m = v4i();
        let a = m.step_cost(&StepKind::Vpu {
            elements: 1 << 20,
            ops_per_element: 1,
        });
        let b = m.step_cost(&StepKind::Vpu {
            elements: 1 << 20,
            ops_per_element: 10,
        });
        assert!((b.unit_seconds / a.unit_seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mxu_energy_tracks_dtype() {
        let m = v4i();
        let mk = |dtype| StepKind::Mxu {
            rows: 128,
            cols: 128,
            inner: 128,
            dtype,
            weights_resident: true,
        };
        let int8 = m.step_cost(&mk(DType::Int8)).energy_joules;
        let bf16 = m.step_cost(&mk(DType::Bf16)).energy_joules;
        let fp32 = m.step_cost(&mk(DType::Fp32)).energy_joules;
        assert!(int8 < bf16 && bf16 < fp32);
    }
}
