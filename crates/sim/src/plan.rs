//! Step plans: the tile-level schedules the compiler hands the simulator.

use std::fmt;

use tpu_arch::MemLevel;
use tpu_numerics::DType;

/// Identifier of a step within one plan.
///
/// The raw index is public so callers can reference earlier steps when
/// assembling plans by hand; [`StepPlan::push`] still rejects forward
/// references, so invalid ids cannot enter a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId(pub u32);

impl StepId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What one step does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepKind {
    /// Asynchronous copy from `from` into VMEM.
    DmaIn {
        /// Source memory level.
        from: MemLevel,
        /// Bytes transferred.
        bytes: u64,
    },
    /// Asynchronous copy from VMEM out to `to`.
    DmaOut {
        /// Destination memory level.
        to: MemLevel,
        /// Bytes transferred.
        bytes: u64,
    },
    /// A matrix-multiply tile group on one MXU: `rows x inner @ inner x
    /// cols`, tiled over the systolic array.
    Mxu {
        /// Activation rows streamed.
        rows: u64,
        /// Output columns.
        cols: u64,
        /// Contraction dimension.
        inner: u64,
        /// Multiply precision (int8 runs at 2x on chips that support it).
        dtype: DType,
        /// Whether weights are already loaded into the array (true in the
        /// steady state of a weight-stationary schedule).
        weights_resident: bool,
    },
    /// Elementwise / reduction work on a VPU.
    Vpu {
        /// Elements processed.
        elements: u64,
        /// Vector-ops per element (1 for add/relu, ~6-10 for
        /// transcendentals; see `tpu_numerics::activation`).
        ops_per_element: u64,
    },
    /// Inter-chip transfer over one ICI link.
    Ici {
        /// Bytes transferred.
        bytes: u64,
    },
}

impl StepKind {
    /// Floating-point (or int-op) work this step performs.
    pub fn flops(&self) -> u64 {
        match *self {
            StepKind::Mxu {
                rows, cols, inner, ..
            } => 2 * rows * cols * inner,
            StepKind::Vpu {
                elements,
                ops_per_element,
            } => elements * ops_per_element,
            _ => 0,
        }
    }

    /// Bytes this step moves on the named off-VMEM channel, if any.
    pub fn channel_bytes(&self) -> Option<(MemLevel, u64)> {
        match *self {
            StepKind::DmaIn { from, bytes } => Some((from, bytes)),
            StepKind::DmaOut { to, bytes } => Some((to, bytes)),
            _ => None,
        }
    }
}

/// One node of the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// This step's id.
    pub id: StepId,
    /// What it does.
    pub kind: StepKind,
    /// Steps that must complete first (always earlier ids).
    pub deps: Vec<StepId>,
    /// Optional human-readable tag (the HLO op it came from).
    pub tag: String,
}

/// A dependency-ordered plan of steps.
///
/// Construction enforces acyclicity structurally: a step may only depend
/// on already-pushed steps, so ids form a topological order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepPlan {
    name: String,
    steps: Vec<Step>,
}

impl StepPlan {
    /// Creates an empty plan.
    pub fn new(name: &str) -> StepPlan {
        StepPlan {
            name: name.to_owned(),
            steps: Vec::new(),
        }
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a step depending on `deps`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if any dependency id has not been pushed yet (which would
    /// create a cycle or a dangling edge).
    pub fn push(&mut self, kind: StepKind, deps: &[StepId]) -> StepId {
        self.push_tagged(kind, deps, "")
    }

    /// Like [`StepPlan::push`] with a human-readable tag.
    ///
    /// # Panics
    ///
    /// Panics if any dependency id has not been pushed yet.
    pub fn push_tagged(&mut self, kind: StepKind, deps: &[StepId], tag: &str) -> StepId {
        let id = StepId(self.steps.len() as u32);
        for d in deps {
            assert!(d.0 < id.0, "dependency {d} of step {id} does not exist yet");
        }
        self.steps.push(Step {
            id,
            kind,
            deps: deps.to_vec(),
            tag: tag.to_owned(),
        });
        id
    }

    /// The steps in id (topological) order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total MXU+VPU work in the plan.
    pub fn total_flops(&self) -> u64 {
        self.steps.iter().map(|s| s.kind.flops()).sum()
    }

    /// Total bytes moved per memory channel `(hbm, cmem)`.
    pub fn channel_traffic(&self) -> (u64, u64) {
        let mut hbm = 0;
        let mut cmem = 0;
        for s in &self.steps {
            if let Some((level, bytes)) = s.kind.channel_bytes() {
                match level {
                    MemLevel::Hbm => hbm += bytes,
                    MemLevel::Cmem => cmem += bytes,
                    _ => {}
                }
            }
        }
        (hbm, cmem)
    }

    /// Appends every step of `other`, shifting its ids after ours and
    /// making its roots depend on `barrier` (if given). Returns the id
    /// mapping offset.
    pub fn append(&mut self, other: &StepPlan, barrier: Option<StepId>) -> u32 {
        let offset = self.steps.len() as u32;
        for s in &other.steps {
            let mut deps: Vec<StepId> = s.deps.iter().map(|d| StepId(d.0 + offset)).collect();
            if let (Some(b), true) = (barrier, s.deps.is_empty()) {
                deps.push(b);
            }
            // Direct push keeps invariant: all new deps < new id.
            self.steps.push(Step {
                id: StepId(s.id.0 + offset),
                kind: s.kind,
                deps,
                tag: s.tag.clone(),
            });
        }
        offset
    }

    /// The operational intensity of the plan against HBM, FLOP/byte
    /// (infinite if the plan never touches HBM).
    pub fn hbm_intensity(&self) -> f64 {
        let (hbm, _) = self.channel_traffic();
        if hbm == 0 {
            f64::INFINITY
        } else {
            self.total_flops() as f64 / hbm as f64
        }
    }
}

impl fmt::Display for StepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan `{}`: {} steps, {:.2e} flops",
            self.name,
            self.len(),
            self.total_flops() as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_sequential_ids() {
        let mut p = StepPlan::new("t");
        let a = p.push(StepKind::Ici { bytes: 1 }, &[]);
        let b = p.push(StepKind::Ici { bytes: 2 }, &[a]);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.steps()[1].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mut p = StepPlan::new("t");
        p.push(StepKind::Ici { bytes: 1 }, &[StepId(5)]);
    }

    #[test]
    fn flops_accounting() {
        let k = StepKind::Mxu {
            rows: 4,
            cols: 8,
            inner: 16,
            dtype: DType::Bf16,
            weights_resident: true,
        };
        assert_eq!(k.flops(), 2 * 4 * 8 * 16);
        assert_eq!(
            StepKind::Vpu {
                elements: 100,
                ops_per_element: 3
            }
            .flops(),
            300
        );
        assert_eq!(StepKind::Ici { bytes: 9 }.flops(), 0);
    }

    #[test]
    fn channel_traffic_splits_levels() {
        let mut p = StepPlan::new("t");
        p.push(
            StepKind::DmaIn {
                from: MemLevel::Hbm,
                bytes: 100,
            },
            &[],
        );
        p.push(
            StepKind::DmaIn {
                from: MemLevel::Cmem,
                bytes: 40,
            },
            &[],
        );
        p.push(
            StepKind::DmaOut {
                to: MemLevel::Hbm,
                bytes: 10,
            },
            &[],
        );
        assert_eq!(p.channel_traffic(), (110, 40));
    }

    #[test]
    fn intensity_is_flops_over_hbm_bytes() {
        let mut p = StepPlan::new("t");
        p.push(
            StepKind::DmaIn {
                from: MemLevel::Hbm,
                bytes: 1000,
            },
            &[],
        );
        p.push(
            StepKind::Mxu {
                rows: 10,
                cols: 10,
                inner: 10,
                dtype: DType::Bf16,
                weights_resident: true,
            },
            &[],
        );
        assert!((p.hbm_intensity() - 2.0).abs() < 1e-12);
        let empty = StepPlan::new("e");
        assert!(empty.hbm_intensity().is_infinite());
    }

    #[test]
    fn append_rebases_ids_and_adds_barrier() {
        let mut a = StepPlan::new("a");
        let a0 = a.push(StepKind::Ici { bytes: 1 }, &[]);
        let mut b = StepPlan::new("b");
        let b0 = b.push(StepKind::Ici { bytes: 2 }, &[]);
        b.push(StepKind::Ici { bytes: 3 }, &[b0]);
        let offset = a.append(&b, Some(a0));
        assert_eq!(offset, 1);
        assert_eq!(a.len(), 3);
        // b's root now depends on the barrier...
        assert_eq!(a.steps()[1].deps, vec![a0]);
        // ...and b's internal edge is rebased.
        assert_eq!(a.steps()[2].deps, vec![StepId(1)]);
    }

    #[test]
    fn display_mentions_name() {
        assert!(format!("{}", StepPlan::new("myplan")).contains("myplan"));
    }
}
