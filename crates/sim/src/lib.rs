//! Event-driven performance and energy simulator for TPU configurations.
//!
//! The paper evaluates TPUv4i on production hardware; this crate is the
//! substitute testbed (reproduction band 2/5: no silicon, no HDL). It
//! executes a [`plan::StepPlan`] — the tile-level schedule the `tpu-hlo`
//! compiler emits — against a [`tpu_arch::ChipConfig`], modeling:
//!
//! - **systolic MXU timing** (fill + stream, weight-stationary, int8
//!   double rate where supported),
//! - **memory channels as bandwidth servers** (HBM and CMEM serialize;
//!   DMA engines and latency overlap),
//! - **unit pools** (MXUs, VPUs, DMA engines, ICI links) with greedy
//!   list-scheduling contention,
//! - **energy integration** from the process node's per-op/per-byte
//!   table plus static power.
//!
//! The output [`report::SimReport`] carries time, energy, per-resource
//! utilization and the roofline coordinates used by experiments E4–E7.
//!
//! # Example
//!
//! ```
//! use tpu_sim::plan::{StepKind, StepPlan};
//! use tpu_sim::Simulator;
//! use tpu_arch::{catalog, MemLevel};
//! use tpu_numerics::DType;
//!
//! let mut plan = StepPlan::new("demo");
//! let load = plan.push(StepKind::DmaIn { from: MemLevel::Hbm, bytes: 1 << 20 }, &[]);
//! plan.push(
//!     StepKind::Mxu { rows: 128, cols: 128, inner: 128, dtype: DType::Bf16,
//!                     weights_resident: true },
//!     &[load],
//! );
//! let report = Simulator::new(catalog::tpu_v4i()).run(&plan).unwrap();
//! assert!(report.seconds > 0.0 && report.energy_joules > 0.0);
//! ```

pub mod engine;
pub mod machine;
pub mod plan;
pub mod report;
pub mod trace;

pub use engine::{SimError, Simulator};
pub use plan::{Step, StepId, StepKind, StepPlan};
pub use report::{Resource, SimReport};
pub use trace::{Trace, TraceEntry};
