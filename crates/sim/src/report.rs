//! Simulation reports: time, energy, utilization, roofline coordinates.

use std::fmt;

/// A contended resource class tracked by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Matrix units (pool of `cores x mxus_per_core`).
    Mxu,
    /// Vector units (pool of `cores`).
    Vpu,
    /// DMA engines.
    Dma,
    /// Inter-chip links.
    Ici,
    /// The shared HBM channel (bandwidth server).
    HbmChannel,
    /// The shared CMEM channel (bandwidth server).
    CmemChannel,
}

impl Resource {
    /// All resource classes.
    pub const ALL: [Resource; 6] = [
        Resource::Mxu,
        Resource::Vpu,
        Resource::Dma,
        Resource::Ici,
        Resource::HbmChannel,
        Resource::CmemChannel,
    ];

    /// Short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            Resource::Mxu => "mxu",
            Resource::Vpu => "vpu",
            Resource::Dma => "dma",
            Resource::Ici => "ici",
            Resource::HbmChannel => "hbm",
            Resource::CmemChannel => "cmem",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of simulating one plan on one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Plan name.
    pub plan: String,
    /// Chip name.
    pub chip: String,
    /// Makespan in seconds.
    pub seconds: f64,
    /// Dynamic energy in joules (calibrated; see the engine docs).
    pub dynamic_joules: f64,
    /// Static (idle-power) energy in joules.
    pub static_joules: f64,
    /// MXU + VPU operations performed.
    pub flops: u64,
    /// Bytes moved over the HBM channel.
    pub hbm_bytes: u64,
    /// Bytes moved over the CMEM channel.
    pub cmem_bytes: u64,
    /// Number of steps executed.
    pub steps: usize,
    busy: [f64; 6],
    pool_sizes: [usize; 6],
    energy_by: [f64; 6],
    /// Total energy in joules (dynamic + static).
    pub energy_joules: f64,
}

impl SimReport {
    pub(crate) fn new(plan: &str, chip: &str) -> SimReport {
        SimReport {
            plan: plan.to_owned(),
            chip: chip.to_owned(),
            seconds: 0.0,
            dynamic_joules: 0.0,
            static_joules: 0.0,
            flops: 0,
            hbm_bytes: 0,
            cmem_bytes: 0,
            steps: 0,
            busy: [0.0; 6],
            pool_sizes: [1; 6],
            energy_by: [0.0; 6],
            energy_joules: 0.0,
        }
    }

    fn idx(r: Resource) -> usize {
        match r {
            Resource::Mxu => 0,
            Resource::Vpu => 1,
            Resource::Dma => 2,
            Resource::Ici => 3,
            Resource::HbmChannel => 4,
            Resource::CmemChannel => 5,
        }
    }

    pub(crate) fn add_busy(&mut self, r: Resource, seconds: f64) {
        self.busy[Self::idx(r)] += seconds;
    }

    pub(crate) fn add_energy(&mut self, r: Resource, joules: f64) {
        self.energy_by[Self::idx(r)] += joules;
    }

    /// Dynamic energy attributed to one resource class, joules.
    ///
    /// DMA entries carry the memory-transfer energy of the channel they
    /// move data over; the sum over all classes equals
    /// [`SimReport::dynamic_joules`].
    pub fn energy_of(&self, r: Resource) -> f64 {
        self.energy_by[Self::idx(r)]
    }

    /// Fraction of *total* energy (incl. static) spent in one class.
    pub fn energy_fraction(&self, r: Resource) -> f64 {
        if self.energy_joules <= 0.0 {
            0.0
        } else {
            self.energy_by[Self::idx(r)] / self.energy_joules
        }
    }

    /// Fraction of total energy that is static (idle power x makespan).
    pub fn static_fraction(&self) -> f64 {
        if self.energy_joules <= 0.0 {
            0.0
        } else {
            self.static_joules / self.energy_joules
        }
    }

    pub(crate) fn set_pool_sizes(&mut self, mxu: usize, vpu: usize, dma: usize, ici: usize) {
        self.pool_sizes = [mxu, vpu, dma, ici, 1, 1];
        self.energy_joules = self.dynamic_joules + self.static_joules;
    }

    /// Fraction of the makespan during which resource `r` was busy,
    /// averaged over its pool (0 for an unused resource or empty plan).
    pub fn utilization(&self, r: Resource) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        let i = Self::idx(r);
        self.busy[i] / (self.seconds * self.pool_sizes[i] as f64)
    }

    /// Achieved operations per second.
    pub fn flops_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.seconds
        }
    }

    /// Achieved TFLOPS (convenience).
    pub fn tflops(&self) -> f64 {
        self.flops_per_second() / 1e12
    }

    /// Average power over the run, watts (idle power if nothing ran).
    pub fn average_watts(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.energy_joules / self.seconds
        }
    }

    /// Achieved operations per joule — the perf/W axis of E5 (scaled by
    /// 1e-9 to GFLOPS/W for readability).
    pub fn gflops_per_watt(&self) -> f64 {
        if self.energy_joules <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.energy_joules / 1e9
        }
    }

    /// Achieved operational intensity against HBM, FLOP/byte.
    pub fn achieved_intensity(&self) -> f64 {
        if self.hbm_bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.hbm_bytes as f64
        }
    }

    /// The roofline point `(intensity FLOP/B, achieved FLOP/s)` for E4.
    pub fn roofline_point(&self) -> (f64, f64) {
        (self.achieved_intensity(), self.flops_per_second())
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {}: {:.3} ms, {:.2} TFLOP/s, {:.1} W avg, {:.1} GF/W",
            self.plan,
            self.chip,
            self.seconds * 1e3,
            self.tflops(),
            self.average_watts(),
            self.gflops_per_watt()
        )?;
        write!(f, "  util:")?;
        for r in Resource::ALL {
            write!(f, " {}={:.0}%", r, self.utilization(r) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let mut r = SimReport::new("p", "c");
        r.seconds = 2.0;
        r.flops = 4_000_000_000_000;
        r.hbm_bytes = 1_000_000_000;
        r.dynamic_joules = 100.0;
        r.static_joules = 100.0;
        r.add_busy(Resource::Mxu, 1.0);
        r.add_energy(Resource::Mxu, 75.0);
        r.add_energy(Resource::Dma, 25.0);
        r.set_pool_sizes(2, 1, 4, 1);
        r
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.flops_per_second() - 2e12).abs() < 1.0);
        assert!((r.tflops() - 2.0).abs() < 1e-9);
        assert!((r.average_watts() - 100.0).abs() < 1e-9);
        assert!((r.gflops_per_watt() - 20.0).abs() < 1e-9);
        assert!((r.achieved_intensity() - 4000.0).abs() < 1e-9);
        let (x, y) = r.roofline_point();
        assert!((x - 4000.0).abs() < 1e-9 && (y - 2e12).abs() < 1.0);
    }

    #[test]
    fn energy_breakdown_sums_and_fractions() {
        let r = sample();
        assert_eq!(r.energy_of(Resource::Mxu), 75.0);
        assert_eq!(r.energy_of(Resource::Dma), 25.0);
        let by: f64 = Resource::ALL.iter().map(|&x| r.energy_of(x)).sum();
        assert_eq!(by, r.dynamic_joules);
        assert!((r.energy_fraction(Resource::Mxu) - 0.375).abs() < 1e-12);
        assert!((r.static_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_averages_over_pool() {
        let r = sample();
        // 1 busy-second over 2 units x 2 seconds = 25%.
        assert!((r.utilization(Resource::Mxu) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(Resource::Vpu), 0.0);
    }

    #[test]
    fn zero_time_report_is_defined() {
        let r = SimReport::new("p", "c");
        assert_eq!(r.flops_per_second(), 0.0);
        assert_eq!(r.average_watts(), 0.0);
        assert_eq!(r.utilization(Resource::Mxu), 0.0);
        assert_eq!(r.gflops_per_watt(), 0.0);
        assert!(r.achieved_intensity().is_infinite());
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = format!("{}", sample());
        assert!(s.contains("TFLOP/s"));
        assert!(s.contains("util:"));
        assert!(s.contains("mxu="));
    }

    #[test]
    fn resource_names_unique() {
        let mut names: Vec<&str> = Resource::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Resource::ALL.len());
    }
}
