//! The event-driven executor: greedy list scheduling over unit pools and
//! serialized memory channels.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use tpu_arch::{ChipConfig, MemLevel};
use tpu_numerics::DType;

use crate::machine::Machine;
use crate::plan::{StepKind, StepPlan};
use crate::report::{Resource, SimReport};
use crate::trace::{Trace, TraceEntry};

/// Error produced by a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The plan DMAs to/from CMEM but the chip has none.
    NoCmem {
        /// Name of the chip.
        chip: String,
    },
    /// A plan step uses a dtype the chip cannot compute at all.
    UnsupportedType {
        /// Name of the chip.
        chip: String,
        /// The requested type.
        dtype: DType,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoCmem { chip } => write!(f, "{chip} has no CMEM"),
            SimError::UnsupportedType { chip, dtype } => {
                write!(f, "{chip} cannot compute in {dtype}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A simulator bound to one chip configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    machine: Machine,
    /// Calibration factor anchoring modeled dynamic power to the chip's
    /// published TDP at full utilization (see [`Simulator::calibration`]).
    dyn_scale: f64,
}

impl Simulator {
    /// Creates a simulator for a chip.
    pub fn new(chip: ChipConfig) -> Simulator {
        let machine = Machine::new(chip);
        let dyn_scale = Self::calibration(&machine);
        Simulator { machine, dyn_scale }
    }

    /// The underlying machine model.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Computes the dynamic-energy calibration factor.
    ///
    /// The per-op energies from the process table capture *relative*
    /// costs well but omit clocking, control and margin, which dominate
    /// real chips. We anchor the model to the published envelope: at full
    /// MXU + HBM + VPU utilization, dynamic power should equal
    /// `TDP - idle`. All per-step dynamic energies are scaled by this one
    /// factor, preserving relative costs.
    fn calibration(machine: &Machine) -> f64 {
        let chip = machine.chip();
        let e = chip.node.energy();
        let fastest = chip.fastest_type();
        let mac_pj = match fastest {
            DType::Int8 => e.mac_int8_pj,
            DType::Fp32 => e.mac_fp32_pj,
            _ => e.mac_bf16_pj,
        };
        let macs_per_sec = chip
            .peak_macs_per_sec(fastest)
            .expect("fastest type is native");
        let mxu_w = macs_per_sec * mac_pj * 1e-12;
        let hbm_w = chip.hbm.bandwidth_bps * chip.hbm.pj_per_byte * 1e-12;
        let vpu_w = chip.peak_vpu_ops_per_sec() * (e.mac_fp32_pj / 3.0) * 1e-12;
        let modeled_peak_w = mxu_w + hbm_w + vpu_w;
        let headroom_w = (chip.tdp_w - chip.idle_w).max(1.0);
        headroom_w / modeled_peak_w.max(1e-9)
    }

    /// Executes a plan, producing a report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCmem`] if the plan addresses CMEM on a chip
    /// without one, and [`SimError::UnsupportedType`] for un-computable
    /// dtypes (note int8 on a bf16-only chip *is* computable — it runs at
    /// bf16 rate after on-the-fly conversion — but fp16 on a TPU is not).
    pub fn run(&self, plan: &StepPlan) -> Result<SimReport, SimError> {
        self.run_core(plan, false).map(|(report, _)| report)
    }

    /// Like [`Simulator::run`], additionally returning the execution
    /// [`Trace`] (per-step unit assignment and timing) for audits and
    /// Gantt rendering.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_traced(&self, plan: &StepPlan) -> Result<(SimReport, Trace), SimError> {
        self.run_core(plan, true)
    }

    /// Like [`Simulator::run_traced`], additionally streaming the trace
    /// into `recorder` on the unified telemetry event model (one track
    /// per `(resource, unit)`, one span per step) — the same recorder a
    /// serving-fleet run feeds, so one Chrome-trace export can hold both
    /// simulators' timelines. Telemetry stays derived-only: the report
    /// and trace are identical to [`Simulator::run_traced`]'s.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_recorded(
        &self,
        plan: &StepPlan,
        recorder: &mut tpu_telemetry::Recorder,
    ) -> Result<(SimReport, Trace), SimError> {
        let (report, trace) = self.run_core(plan, true)?;
        for ev in trace.to_events() {
            recorder.record(ev);
        }
        recorder.add_counter("sim_steps", trace.entries.len() as u64);
        Ok((report, trace))
    }

    /// Shared scheduling core. `want_trace` gates [`TraceEntry`]
    /// collection: an untraced [`Simulator::run`] (the sweep hot path)
    /// skips the per-step entry push and its `tag` string clone, which
    /// is pure overhead when the caller discards the trace.
    fn run_core(&self, plan: &StepPlan, want_trace: bool) -> Result<(SimReport, Trace), SimError> {
        let chip = self.machine.chip();
        // Pre-validate.
        for s in plan.steps() {
            if let Some((MemLevel::Cmem, _)) = s.kind.channel_bytes() {
                if chip.cmem.is_none() {
                    return Err(SimError::NoCmem {
                        chip: chip.name.clone(),
                    });
                }
            }
            if let StepKind::Mxu { dtype, .. } = s.kind {
                let computable = match dtype {
                    DType::Fp16 => chip.native_types.contains(&DType::Fp16),
                    // int8/bf16/fp32 always computable on TPUs (possibly
                    // via widening), int8 on GPU likewise.
                    _ => true,
                };
                if !computable {
                    return Err(SimError::UnsupportedType {
                        chip: chip.name.clone(),
                        dtype,
                    });
                }
            }
        }

        let (mxu_n, vpu_n, dma_n, ici_n) = self.machine.pool_sizes();
        let mut pools = Pools {
            mxu: Pool::new(mxu_n),
            vpu: Pool::new(vpu_n),
            dma: Pool::new(dma_n),
            ici: Pool::new(ici_n),
            hbm_free: 0.0,
            cmem_free: 0.0,
        };

        let n = plan.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in plan.steps() {
            indegree[s.id.index()] = s.deps.len();
            for d in &s.deps {
                dependents[d.index()].push(s.id.index());
            }
        }
        let mut finish = vec![0.0f64; n];
        let mut ready: BinaryHeap<Reverse<(TimeKey, usize)>> = BinaryHeap::new();
        for (i, s) in plan.steps().iter().enumerate() {
            if s.deps.is_empty() {
                ready.push(Reverse((TimeKey(0.0), i)));
            }
        }

        let mut report = SimReport::new(plan.name(), &chip.name);
        let mut trace = Trace::default();
        if want_trace {
            trace.entries.reserve(n);
        }
        let mut makespan = 0.0f64;
        let mut done = 0usize;

        while let Some(Reverse((TimeKey(ready_t), idx))) = ready.pop() {
            let step = &plan.steps()[idx];
            let cost = self.machine.step_cost(&step.kind);

            // Which unit pool?
            let (pool, resource) = match step.kind {
                StepKind::Mxu { .. } => (&mut pools.mxu, Resource::Mxu),
                StepKind::Vpu { .. } => (&mut pools.vpu, Resource::Vpu),
                StepKind::DmaIn { .. } | StepKind::DmaOut { .. } => (&mut pools.dma, Resource::Dma),
                StepKind::Ici { .. } => (&mut pools.ici, Resource::Ici),
            };
            let (unit_idx, unit_free) = pool.min_free();
            // Serialized channel, if any.
            let channel = self.machine.channel_of(&step.kind);
            let chan_free = match channel {
                Some(MemLevel::Hbm) => pools.hbm_free,
                Some(MemLevel::Cmem) => pools.cmem_free,
                _ => 0.0,
            };

            let start = ready_t.max(unit_free).max(chan_free);
            let end = start + cost.unit_seconds;
            pool.set(unit_idx, end);
            report.add_busy(resource, cost.unit_seconds);
            if want_trace {
                trace.entries.push(TraceEntry {
                    step: step.id,
                    tag: step.tag.clone(),
                    resource,
                    unit: unit_idx,
                    start,
                    end,
                });
            }
            match channel {
                Some(MemLevel::Hbm) => {
                    pools.hbm_free = start + cost.channel_seconds;
                    report.add_busy(Resource::HbmChannel, cost.channel_seconds);
                }
                Some(MemLevel::Cmem) => {
                    pools.cmem_free = start + cost.channel_seconds;
                    report.add_busy(Resource::CmemChannel, cost.channel_seconds);
                }
                _ => {}
            }

            report.dynamic_joules += cost.energy_joules * self.dyn_scale;
            report.add_energy(resource, cost.energy_joules * self.dyn_scale);
            report.flops += step.kind.flops();
            if let Some((level, bytes)) = step.kind.channel_bytes() {
                match level {
                    MemLevel::Hbm => report.hbm_bytes += bytes,
                    MemLevel::Cmem => report.cmem_bytes += bytes,
                    _ => {}
                }
            }

            finish[idx] = end;
            makespan = makespan.max(end);
            done += 1;
            for &dep in &dependents[idx] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    let t = plan.steps()[dep]
                        .deps
                        .iter()
                        .map(|d| finish[d.index()])
                        .fold(0.0f64, f64::max);
                    ready.push(Reverse((TimeKey(t), dep)));
                }
            }
        }
        debug_assert_eq!(done, n, "plan must be acyclic by construction");

        report.seconds = makespan;
        report.static_joules = self.machine.static_watts() * makespan;
        report.set_pool_sizes(mxu_n, vpu_n, dma_n, ici_n);
        report.steps = n;
        Ok((report, trace))
    }
}

/// Wrapper giving `f64` a total order for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A pool of identical units tracked by their next-free times.
///
/// Pools are at most a few dozen units, so a linear argmin scan beats a
/// heap and lets us report *which* unit ran a step (for traces).
#[derive(Debug)]
struct Pool {
    free: Vec<f64>,
}

impl Pool {
    fn new(n: usize) -> Pool {
        Pool {
            free: vec![0.0; n.max(1)],
        }
    }

    /// The earliest-free unit: `(index, free_time)`.
    fn min_free(&self) -> (usize, f64) {
        let mut best = 0usize;
        for (i, &t) in self.free.iter().enumerate() {
            if t < self.free[best] {
                best = i;
            }
        }
        (best, self.free[best])
    }

    fn set(&mut self, unit: usize, free_at: f64) {
        self.free[unit] = free_at;
    }
}

#[derive(Debug)]
struct Pools {
    mxu: Pool,
    vpu: Pool,
    dma: Pool,
    ici: Pool,
    hbm_free: f64,
    cmem_free: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_arch::catalog;

    fn v4i() -> Simulator {
        Simulator::new(catalog::tpu_v4i())
    }

    fn dma(bytes: u64) -> StepKind {
        StepKind::DmaIn {
            from: MemLevel::Hbm,
            bytes,
        }
    }

    fn mxu(rows: u64) -> StepKind {
        StepKind::Mxu {
            rows,
            cols: 128,
            inner: 128,
            dtype: DType::Bf16,
            weights_resident: true,
        }
    }

    #[test]
    fn empty_plan_is_instant() {
        let r = v4i().run(&StepPlan::new("empty")).unwrap();
        assert_eq!(r.seconds, 0.0);
        assert_eq!(r.flops, 0);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn dependencies_serialize() {
        let sim = v4i();
        let mut seq = StepPlan::new("seq");
        let a = seq.push(mxu(1024), &[]);
        seq.push(mxu(1024), &[a]);
        let mut par = StepPlan::new("par");
        par.push(mxu(1024), &[]);
        par.push(mxu(1024), &[]);
        let t_seq = sim.run(&seq).unwrap().seconds;
        let t_par = sim.run(&par).unwrap().seconds;
        // v4i has 4 MXUs: independent steps run fully in parallel.
        assert!(t_seq > 1.9 * t_par, "seq {t_seq} vs par {t_par}");
    }

    #[test]
    fn hbm_channel_bandwidth_serializes() {
        let sim = v4i();
        let bytes = 1 << 26; // 64 MiB
        let mut one = StepPlan::new("one");
        one.push(dma(bytes), &[]);
        let mut four = StepPlan::new("four");
        for _ in 0..4 {
            four.push(dma(bytes), &[]);
        }
        let t1 = sim.run(&one).unwrap().seconds;
        let t4 = sim.run(&four).unwrap().seconds;
        // 8 DMA engines, but one HBM channel: 4x the bytes ≈ 4x the time.
        assert!(
            (t4 / t1 - 4.0).abs() < 0.3,
            "expected ~4x serialization, got {:.2}x",
            t4 / t1
        );
    }

    #[test]
    fn compute_and_dma_overlap() {
        let sim = v4i();
        // Balanced compute and DMA that can double-buffer.
        let mut overlapped = StepPlan::new("ovl");
        for _ in 0..8 {
            overlapped.push(dma(1 << 24), &[]);
            overlapped.push(mxu(16384), &[]);
        }
        let mut serialized = StepPlan::new("ser");
        let mut prev: Option<crate::plan::StepId> = None;
        for _ in 0..8 {
            let deps: Vec<_> = prev.into_iter().collect();
            let d = serialized.push(dma(1 << 24), &deps);
            prev = Some(serialized.push(mxu(16384), &[d]));
        }
        let t_o = sim.run(&overlapped).unwrap().seconds;
        let t_s = sim.run(&serialized).unwrap().seconds;
        assert!(t_o < 0.75 * t_s, "overlap {t_o} vs serial {t_s}");
    }

    #[test]
    fn memory_bound_plan_achieves_bandwidth_roofline() {
        let sim = v4i();
        let mut plan = StepPlan::new("membound");
        let total: u64 = 1 << 30; // 1 GiB through HBM
        for _ in 0..16 {
            plan.push(dma(total / 16), &[]);
        }
        let r = sim.run(&plan).unwrap();
        let achieved_bw = r.hbm_bytes as f64 / r.seconds;
        let peak = sim.machine().chip().hbm.bandwidth_bps;
        assert!(
            achieved_bw > 0.9 * peak,
            "achieved {:.0} GB/s of {:.0}",
            achieved_bw / 1e9,
            peak / 1e9
        );
        assert!(r.utilization(Resource::HbmChannel) > 0.9);
    }

    #[test]
    fn compute_bound_plan_approaches_peak_flops() {
        let sim = v4i();
        let mut plan = StepPlan::new("compute");
        for _ in 0..16 {
            plan.push(
                StepKind::Mxu {
                    rows: 16384,
                    cols: 512,
                    inner: 512,
                    dtype: DType::Bf16,
                    weights_resident: true,
                },
                &[],
            );
        }
        let r = sim.run(&plan).unwrap();
        let peak = sim.machine().chip().peak_flops(DType::Bf16).unwrap();
        let frac = r.flops_per_second() / peak;
        assert!(frac > 0.9, "achieved {:.1}% of peak", frac * 100.0);
        assert!(r.utilization(Resource::Mxu) > 0.9);
    }

    #[test]
    fn power_is_anchored_near_tdp_when_saturated() {
        let sim = v4i();
        let mut plan = StepPlan::new("hot");
        for _ in 0..8 {
            plan.push(
                StepKind::Mxu {
                    rows: 65536,
                    cols: 512,
                    inner: 512,
                    dtype: DType::Bf16,
                    weights_resident: true,
                },
                &[],
            );
            plan.push(dma(1 << 28), &[]);
        }
        let r = sim.run(&plan).unwrap();
        let chip = catalog::tpu_v4i();
        let p = r.average_watts();
        assert!(
            p > 0.5 * chip.tdp_w && p < 1.2 * chip.tdp_w,
            "average power {p:.0} W should be near TDP {} W",
            chip.tdp_w
        );
    }

    #[test]
    fn cmem_plan_rejected_without_cmem() {
        let sim = Simulator::new(catalog::tpu_v3());
        let mut plan = StepPlan::new("cmem");
        plan.push(
            StepKind::DmaIn {
                from: MemLevel::Cmem,
                bytes: 1024,
            },
            &[],
        );
        assert_eq!(
            sim.run(&plan).unwrap_err(),
            SimError::NoCmem {
                chip: "TPUv3".to_owned()
            }
        );
    }

    #[test]
    fn fp16_rejected_on_tpus_accepted_on_gpu() {
        let mut plan = StepPlan::new("fp16");
        plan.push(
            StepKind::Mxu {
                rows: 128,
                cols: 128,
                inner: 128,
                dtype: DType::Fp16,
                weights_resident: true,
            },
            &[],
        );
        assert!(matches!(
            v4i().run(&plan).unwrap_err(),
            SimError::UnsupportedType { .. }
        ));
        assert!(Simulator::new(catalog::gpu_t4_like()).run(&plan).is_ok());
    }

    #[test]
    fn cmem_reads_beat_hbm_reads() {
        // The E6 mechanism: same bytes, CMEM channel is ~8x faster.
        let sim = v4i();
        let mut via_hbm = StepPlan::new("hbm");
        let mut via_cmem = StepPlan::new("cmem");
        for _ in 0..8 {
            via_hbm.push(dma(1 << 26), &[]);
            via_cmem.push(
                StepKind::DmaIn {
                    from: MemLevel::Cmem,
                    bytes: 1 << 26,
                },
                &[],
            );
        }
        let t_hbm = sim.run(&via_hbm).unwrap().seconds;
        let t_cmem = sim.run(&via_cmem).unwrap().seconds;
        assert!(t_cmem < t_hbm / 4.0, "cmem {t_cmem} vs hbm {t_hbm}");
    }

    #[test]
    fn report_utilizations_are_bounded() {
        let sim = v4i();
        let mut plan = StepPlan::new("mixed");
        let d = plan.push(dma(1 << 20), &[]);
        let m = plan.push(mxu(512), &[d]);
        plan.push(
            StepKind::Vpu {
                elements: 1 << 16,
                ops_per_element: 2,
            },
            &[m],
        );
        let r = sim.run(&plan).unwrap();
        for res in Resource::ALL {
            let u = r.utilization(res);
            assert!((0.0..=1.0 + 1e-9).contains(&u), "{res:?} utilization {u}");
        }
        assert!(r.seconds > 0.0);
        assert_eq!(r.steps, 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = v4i();
        let mut plan = StepPlan::new("det");
        for i in 0..32 {
            let deps: Vec<_> = if i >= 2 {
                vec![crate::plan::StepId(i - 2)]
            } else {
                vec![]
            };
            plan.push(dma(1 << 18), &deps);
            let _ = i;
        }
        let a = sim.run(&plan).unwrap();
        let b = sim.run(&plan).unwrap();
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.dynamic_joules, b.dynamic_joules);
    }
}
