//! Property tests for the event-driven engine.

use proptest::prelude::*;

use tpu_arch::{catalog, MemLevel};
use tpu_numerics::DType;
use tpu_sim::plan::{StepId, StepKind, StepPlan};
use tpu_sim::{Resource, Simulator};

fn step_kind() -> impl Strategy<Value = StepKind> {
    prop_oneof![
        (1u64..(1 << 22)).prop_map(|bytes| StepKind::DmaIn {
            from: MemLevel::Hbm,
            bytes
        }),
        (1u64..(1 << 20)).prop_map(|bytes| StepKind::DmaOut {
            to: MemLevel::Hbm,
            bytes
        }),
        (1u64..512, 1u64..512, 1u64..512).prop_map(|(rows, cols, inner)| StepKind::Mxu {
            rows,
            cols,
            inner,
            dtype: DType::Bf16,
            weights_resident: false,
        }),
        (1u64..(1 << 18), 1u64..8).prop_map(|(elements, ops)| StepKind::Vpu {
            elements,
            ops_per_element: ops,
        }),
        (1u64..(1 << 20)).prop_map(|bytes| StepKind::Ici { bytes }),
    ]
}

/// A random plan: each step may depend on up to two earlier steps.
fn random_plan() -> impl Strategy<Value = StepPlan> {
    prop::collection::vec((step_kind(), any::<u32>(), any::<u32>()), 1..48).prop_map(|steps| {
        let mut plan = StepPlan::new("prop");
        for (i, (kind, d1, d2)) in steps.into_iter().enumerate() {
            let mut deps = Vec::new();
            if i > 0 {
                deps.push(StepId((d1 as usize % i) as u32));
                let second = (d2 as usize) % i;
                if !deps.contains(&StepId(second as u32)) {
                    deps.push(StepId(second as u32));
                }
            }
            plan.push(kind, &deps);
        }
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The makespan is bounded below by every single step's duration and
    /// above by the sum of all durations (greedy scheduling never
    /// inflates past full serialization).
    #[test]
    fn makespan_bounds(plan in random_plan()) {
        let sim = Simulator::new(catalog::tpu_v4i());
        let machine = sim.machine().clone();
        let report = sim.run(&plan).unwrap();
        let durations: Vec<f64> = plan
            .steps()
            .iter()
            .map(|s| machine.step_cost(&s.kind).unit_seconds)
            .collect();
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        let sum: f64 = durations.iter().sum();
        prop_assert!(report.seconds >= max * 0.999, "{} < {max}", report.seconds);
        prop_assert!(report.seconds <= sum * 1.001, "{} > {sum}", report.seconds);
    }

    /// Utilization never exceeds 1 on any resource, and traffic counters
    /// match the plan exactly.
    #[test]
    fn utilization_and_traffic(plan in random_plan()) {
        let sim = Simulator::new(catalog::tpu_v4i());
        let report = sim.run(&plan).unwrap();
        for r in Resource::ALL {
            let u = report.utilization(r);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "{r}: {u}");
        }
        let (hbm, cmem) = plan.channel_traffic();
        prop_assert_eq!(report.hbm_bytes, hbm);
        prop_assert_eq!(report.cmem_bytes, cmem);
        prop_assert_eq!(report.flops, plan.total_flops());
    }

    /// Traced runs match untraced runs, cover every step, and never
    /// overlap two steps on one unit.
    #[test]
    fn traces_are_consistent(plan in random_plan()) {
        let sim = Simulator::new(catalog::tpu_v4i());
        let plain = sim.run(&plan).unwrap();
        let (traced_report, trace) = sim.run_traced(&plan).unwrap();
        prop_assert_eq!(plain, traced_report);
        prop_assert_eq!(trace.entries.len(), plan.len());
        prop_assert_eq!(trace.find_overlap(), None);
        // Every step's dependencies finish before it starts.
        for e in &trace.entries {
            for dep in &plan.steps()[e.step.index()].deps {
                let dep_end = trace
                    .entries
                    .iter()
                    .find(|x| x.step == *dep)
                    .map(|x| x.end)
                    .unwrap();
                prop_assert!(dep_end <= e.start + 1e-12);
            }
        }
        // The Gantt renders without panicking.
        let g = trace.render_gantt(60);
        prop_assert!(!g.is_empty());
    }

    /// The engine is deterministic.
    #[test]
    fn engine_is_deterministic(plan in random_plan()) {
        let sim = Simulator::new(catalog::tpu_v4i());
        let a = sim.run(&plan).unwrap();
        let b = sim.run(&plan).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Adding a dependency never makes a plan finish earlier.
    #[test]
    fn extra_dependencies_never_speed_up(plan in random_plan()) {
        prop_assume!(plan.len() >= 2);
        let sim = Simulator::new(catalog::tpu_v4i());
        let base = sim.run(&plan).unwrap().seconds;
        // Rebuild with a full serialization chain added.
        let mut chained = StepPlan::new("chained");
        for (i, s) in plan.steps().iter().enumerate() {
            let mut deps = s.deps.clone();
            if i > 0 {
                let prev = StepId((i - 1) as u32);
                if !deps.contains(&prev) {
                    deps.push(prev);
                }
            }
            chained.push(s.kind, &deps);
        }
        let serial = sim.run(&chained).unwrap().seconds;
        prop_assert!(serial >= base * 0.999, "serial {serial} < base {base}");
    }

    /// Energy is additive: energy of a plan equals the sum of the
    /// energies of its steps run alone (static power aside).
    #[test]
    fn dynamic_energy_is_additive(plan in random_plan()) {
        let sim = Simulator::new(catalog::tpu_v4i());
        let whole = sim.run(&plan).unwrap().dynamic_joules;
        let mut parts = 0.0f64;
        for s in plan.steps() {
            let mut single = StepPlan::new("one");
            single.push(s.kind, &[]);
            parts += sim.run(&single).unwrap().dynamic_joules;
        }
        prop_assert!((whole - parts).abs() <= 1e-9 * parts.max(1.0));
    }
}
