//! The analytic cost model brackets the simulator for every production
//! app on every TPU generation — the property that makes it usable for
//! compile-time decisions (as XLA uses its own).

use tpugen::hlo::compile;
use tpugen::prelude::*;

#[test]
fn cost_model_brackets_simulation_for_all_apps() {
    for chip in catalog::tpu_generations() {
        let sim = Simulator::new(chip.clone());
        for app in production_apps() {
            for batch in [1u64, 16] {
                let graph = app.build(batch).expect("builds");
                let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
                let est = exe.cost_estimate(&chip);
                let simulated = sim.run(exe.plan()).expect("simulates").seconds;
                assert!(
                    simulated >= est.lower_bound_s() * 0.999,
                    "{} b{batch} on {}: sim {simulated} < lower bound {}",
                    app.spec.name,
                    chip.name,
                    est.lower_bound_s()
                );
                assert!(
                    simulated <= est.upper_bound_s() * 1.001,
                    "{} b{batch} on {}: sim {simulated} > upper bound {}",
                    app.spec.name,
                    chip.name,
                    est.upper_bound_s()
                );
            }
        }
    }
}

#[test]
fn cost_model_agrees_with_simulator_on_bottlenecks() {
    // At batch 1 with no CMEM the MLPs are HBM-bound; at batch 256 CNN0
    // is MXU-bound — the verdicts the roofline (E4) reports.
    let chip = catalog::tpu_v4i();
    let no_cmem = CompilerOptions::no_cmem();
    let mlp = compile(&zoo::mlp0().build(1).unwrap(), &chip, &no_cmem).unwrap();
    assert_eq!(mlp.cost_estimate(&chip).bottleneck(), "hbm");
    let cnn = compile(&zoo::cnn0().build(256).unwrap(), &chip, &no_cmem).unwrap();
    assert_eq!(cnn.cost_estimate(&chip).bottleneck(), "mxu");
}
