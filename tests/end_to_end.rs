//! Cross-crate integration: every production app compiles and simulates
//! on every catalog generation, with conservation checks tying the
//! graph, the compiler, and the simulator together.

use tpugen::hlo::compile;
use tpugen::prelude::*;

#[test]
fn every_app_runs_on_every_generation() {
    for chip in catalog::all_chips() {
        for app in production_apps() {
            let graph = app.build(4).expect("builds");
            let exe = compile(&graph, &chip, &CompilerOptions::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", app.spec.name, chip.name));
            let report = Simulator::new(chip.clone())
                .run(exe.plan())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", app.spec.name, chip.name));
            assert!(report.seconds > 0.0, "{} on {}", app.spec.name, chip.name);
            assert!(
                report.seconds < 10.0,
                "{} on {} took {} simulated seconds — timing model broken?",
                app.spec.name,
                chip.name,
                report.seconds
            );
        }
    }
}

#[test]
fn flops_are_conserved_from_graph_to_simulator() {
    // The simulator must execute exactly the work the plan contains, and
    // the plan's MXU work must equal the graph's matrix-op work.
    let chip = catalog::tpu_v4i();
    for app in production_apps() {
        let graph = app.build(8).expect("builds");
        let exe = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
        let report = Simulator::new(chip.clone())
            .run(exe.plan())
            .expect("simulates");
        assert_eq!(
            report.flops,
            exe.plan().total_flops(),
            "{}: simulator executed different work than planned",
            app.spec.name
        );
        let planned_mxu: u64 = exe
            .plan()
            .steps()
            .iter()
            .filter(|s| matches!(s.kind, tpugen::sim::StepKind::Mxu { .. }))
            .map(|s| s.kind.flops())
            .sum();
        let graph_mxu: u64 = graph
            .nodes()
            .iter()
            .filter(|n| n.op.is_matrix_op())
            .map(|n| graph.node_flops(n))
            .sum();
        assert_eq!(
            planned_mxu, graph_mxu,
            "{}: lowering changed the matrix work",
            app.spec.name
        );
    }
}

#[test]
fn hbm_traffic_covers_streamed_weights_when_cmem_disabled() {
    // Without CMEM every *matmul/conv* weight byte must cross HBM at
    // least once per inference. Embedding tables are exempt: a gather
    // reads only the looked-up rows, not the whole table.
    let chip = catalog::tpu_v4i();
    for app in production_apps() {
        let graph = app.build(4).expect("builds");
        let exe = compile(&graph, &chip, &CompilerOptions::no_cmem()).expect("compiles");
        let (hbm, cmem) = exe.plan().channel_traffic();
        assert_eq!(cmem, 0, "{}: no CMEM traffic allowed", app.spec.name);
        let consumers = graph.consumers();
        let streamed: u64 = graph
            .nodes()
            .iter()
            .filter(|n| {
                matches!(n.op, tpugen::hlo::HloOp::Constant)
                    && consumers[n.id.index()]
                        .iter()
                        .any(|&c| graph.node(c).op.is_matrix_op())
            })
            .map(|n| n.shape.bytes(graph.dtype()))
            .sum();
        assert!(
            hbm >= streamed,
            "{}: HBM traffic {hbm} below streamed weight bytes {streamed}",
            app.spec.name,
        );
    }
}

#[test]
fn cmem_moves_traffic_but_conserves_total_weight_bytes() {
    let chip = catalog::tpu_v4i();
    for app in production_apps() {
        let graph = app.build(4).expect("builds");
        let with = compile(&graph, &chip, &CompilerOptions::default()).expect("compiles");
        let without = compile(&graph, &chip, &CompilerOptions::no_cmem()).expect("compiles");
        let (h1, c1) = with.plan().channel_traffic();
        let (h0, c0) = without.plan().channel_traffic();
        assert_eq!(c0, 0);
        assert_eq!(
            h1 + c1,
            h0 + c0,
            "{}: weight placement must not create or destroy traffic",
            app.spec.name
        );
        assert!(h1 <= h0, "{}", app.spec.name);
    }
}

#[test]
fn one_source_many_targets_but_binaries_do_not_cross() {
    // Lesson 2 end to end: the same graph compiles for every generation;
    // each binary decodes only under its own generation.
    let graph = zoo::mlp0().build(8).expect("builds");
    let chips = catalog::all_chips();
    let mut binaries = Vec::new();
    for chip in &chips {
        let exe = compile(&graph, chip, &CompilerOptions::no_cmem()).expect("compiles");
        binaries.push((chip.generation, exe.binary().expect("encodes")));
    }
    for (gen_a, bytes) in &binaries {
        for chip in &chips {
            let result = tpugen::isa::decode(bytes, chip.generation);
            if chip.generation == *gen_a {
                assert!(result.is_ok(), "{gen_a} binary must decode on itself");
            } else {
                assert!(
                    result.is_err(),
                    "{gen_a} binary must not decode on {}",
                    chip.generation
                );
            }
        }
    }
}

#[test]
fn vliw_programs_verify_for_all_apps_and_targets() {
    for chip in catalog::all_chips() {
        for app in production_apps() {
            let graph = app.build(2).expect("builds");
            let exe = compile(&graph, &chip, &CompilerOptions::no_cmem()).expect("compiles");
            exe.program()
                .verify()
                .unwrap_or_else(|e| panic!("{} on {}: {e}", app.spec.name, chip.name));
            let stats = exe.program().stats();
            assert!(stats.bundles > 0);
            assert!(stats.mxu_ops > 0, "{} should use the MXU", app.spec.name);
        }
    }
}

#[test]
fn latency_is_monotone_in_batch_for_all_apps() {
    let chip = catalog::tpu_v4i();
    for app in production_apps() {
        let model = LatencyModel::profile(&app, &chip, &CompilerOptions::default(), &[1, 8, 64])
            .expect("profiles");
        assert!(model.latency(8) >= model.latency(1), "{}", app.spec.name);
        assert!(model.latency(64) >= model.latency(8), "{}", app.spec.name);
        // Weight-dominated apps (MLPs, RNNs) amortize strongly: the
        // systolic weight-push floor makes batch nearly free. The big
        // transformers scale ~linearly (and slightly worse once VMEM
        // spilling kicks in), which is realistic — bound the overhead.
        match app.spec.class {
            AppClass::Mlp | AppClass::Rnn => assert!(
                model.latency(8) < 2.0 * model.latency(1),
                "{}: weight-bound app must amortize batching",
                app.spec.name
            ),
            _ => assert!(
                model.latency(8) < 12.0 * model.latency(1),
                "{}: batch-8 overhead out of bounds",
                app.spec.name
            ),
        }
    }
}

#[test]
fn bigger_chips_are_not_slower() {
    // TPUv4 (2 cores) must never lose to TPUv4i (1 core) on throughput.
    let v4i = catalog::tpu_v4i();
    let v4 = catalog::tpu_v4();
    for app in production_apps() {
        let graph = app.build(32).expect("builds");
        let t_v4i = Simulator::new(v4i.clone())
            .run(
                compile(&graph, &v4i, &CompilerOptions::default())
                    .expect("compiles")
                    .plan(),
            )
            .expect("simulates")
            .seconds;
        let t_v4 = Simulator::new(v4.clone())
            .run(
                compile(&graph, &v4, &CompilerOptions::default())
                    .expect("compiles")
                    .plan(),
            )
            .expect("simulates")
            .seconds;
        assert!(
            t_v4 <= t_v4i * 1.01,
            "{}: TPUv4 ({t_v4}s) slower than TPUv4i ({t_v4i}s)",
            app.spec.name
        );
    }
}
