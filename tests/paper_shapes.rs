//! The paper's headline result *shapes*, asserted: who wins, by roughly
//! what factor, where the crossovers fall. Absolute numbers are
//! simulator-dependent; these relationships are what the reproduction
//! must preserve (see EXPERIMENTS.md).

use tpu_bench::experiments::{cost_exp, numerics_exp, perf, serving_exp, tables};

#[test]
fn lesson1_technology_scales_unequally() {
    let rows = tables::e2_data();
    let (logic, sram, dram, wire) = rows.last().unwrap().improvement;
    assert!(logic > 2.0 * sram, "logic must far outpace SRAM");
    assert!(sram > dram && dram > wire);
    // The CMEM motivation: HBM bytes get *relatively* more expensive.
    let first = rows.first().unwrap().hbm_byte_per_mac;
    let last = rows.last().unwrap().hbm_byte_per_mac;
    assert!(last > 3.0 * first);
}

#[test]
fn e4_roofline_shape() {
    let points = perf::e4_data();
    let by_name = |n: &str| points.iter().find(|p| p.app == n).unwrap();
    // MLPs and big RNNs are memory bound; CNN0 is compute bound.
    assert!(by_name("MLP0").memory_bound);
    assert!(by_name("RNN0").memory_bound);
    assert!(!by_name("CNN0").memory_bound);
    // CMEM lifts the memory-bound apps meaningfully, and never hurts.
    for p in &points {
        assert!(p.tflops_cmem >= 0.99 * p.tflops_hbm, "{}", p.app);
    }
    assert!(
        by_name("MLP0").tflops_cmem > 1.1 * by_name("MLP0").tflops_hbm,
        "CMEM should lift MLP0 above the HBM roof"
    );
}

#[test]
fn e5_tpuv4i_wins_perf_per_watt_by_about_2x_or_more() {
    let rows = perf::e5_data();
    let rel = perf::e5_relative_to_v3(&rows);
    let v4i = rel.iter().find(|(c, _, _)| c == "TPUv4i").unwrap();
    let v2 = rel.iter().find(|(c, _, _)| c == "TPUv2").unwrap();
    // Paper shape: TPUv4i ≈ 1.3-1.7x TPUv3 perf and >2x perf/W.
    assert!(
        v4i.1 > 1.0 && v4i.1 < 3.0,
        "v4i perf vs v3 = {:.2}x out of expected band",
        v4i.1
    );
    assert!(
        v4i.2 > 2.0,
        "v4i perf/W vs v3 = {:.2}x, expected > 2x",
        v4i.2
    );
    // TPUv2 is slower than TPUv3 (fewer MXUs, lower clock).
    assert!(v2.1 < 1.0);
}

#[test]
fn e6_cmem_speedup_is_monotone_and_saturates() {
    let points = perf::e6_data();
    // Monotone non-decreasing geomean (within simulation noise).
    for pair in points.windows(2) {
        assert!(
            pair[1].geomean_speedup >= pair[0].geomean_speedup * 0.97,
            "CMEM sweep regressed: {:?} -> {:?}",
            pair[0].budget_mib,
            pair[1].budget_mib
        );
    }
    // Real benefit by 128 MiB, and diminishing returns beyond.
    let at = |mib: u64| {
        points
            .iter()
            .find(|p| p.budget_mib == mib)
            .unwrap()
            .geomean_speedup
    };
    assert!(at(128) > 1.2, "128 MiB gives {:.2}x", at(128));
    let marginal = at(192) - at(128);
    let early = at(32) - at(0);
    assert!(
        marginal < early,
        "returns must diminish: early {early:.3} vs late {marginal:.3}"
    );
}

#[test]
fn e7_compiler_gains_accumulate() {
    let gains = perf::e7_data();
    assert_eq!(gains.len(), 4);
    for pair in gains.windows(2) {
        assert!(
            pair[1].geomean_speedup >= pair[0].geomean_speedup * 0.999,
            "opt levels must not regress"
        );
    }
    let total = gains.last().unwrap().geomean_speedup;
    // Paper shape: compiler work roughly doubled delivered performance.
    assert!(
        total > 1.5 && total < 5.0,
        "cumulative compiler gain {total:.2}x out of expected band"
    );
}

#[test]
fn e8_slo_limits_batch_for_heavy_apps() {
    let rows = serving_exp::e8_data();
    let bert1 = rows.iter().find(|r| r.app == "BERT1").unwrap();
    let mlp0 = rows.iter().find(|r| r.app == "MLP0").unwrap();
    // Heavy transformer: the SLO caps batch well below memory limits.
    assert!(
        bert1.max_batch < 64,
        "BERT1 SLO batch {} should be small",
        bert1.max_batch
    );
    // Light MLP: the SLO admits big batches.
    assert!(mlp0.max_batch > bert1.max_batch);
    // Every app meets its SLO at 70% load.
    for r in &rows {
        assert!(
            r.p99_at_load_ms <= r.slo_ms,
            "{}: p99 {}ms > SLO {}ms",
            r.app,
            r.p99_at_load_ms,
            r.slo_ms
        );
    }
}

#[test]
fn e9_quality_proxy_agrees_with_production_verdicts() {
    for row in numerics_exp::e9_data() {
        assert_eq!(
            row.int8_ok, row.production_verdict,
            "{}: proxy and production verdict disagree",
            row.app
        );
        // int8 is never slower.
        assert!(row.int8_speedup >= 0.99, "{}", row.app);
    }
}

#[test]
fn e10_tco_favors_the_cool_inference_chip() {
    let rows = cost_exp::e10_data();
    let v4i = rows.iter().find(|r| r.chip == "TPUv4i").unwrap();
    let v3 = rows.iter().find(|r| r.chip == "TPUv3").unwrap();
    assert!(v4i.perf_per_tco > 2.0 * v3.perf_per_tco);
    // OpEx is a first-order term for the hot chip (Lesson 3).
    assert!(v3.opex_usd > 0.4 * v3.capex_usd);
}

#[test]
fn e11_multitenancy_cliff_at_hbm_capacity() {
    let data = serving_exp::e11_data();
    let v4i: Vec<_> = data.iter().filter(|p| p.chip == "TPUv4i").collect();
    let resident_max = v4i
        .iter()
        .filter(|p| p.all_resident)
        .map(|p| p.worst_p99_ms)
        .fold(0.0f64, f64::max);
    let swapping_min = v4i
        .iter()
        .filter(|p| !p.all_resident)
        .map(|p| p.worst_p99_ms)
        .fold(f64::MAX, f64::min);
    assert!(
        swapping_min > 10.0 * resident_max,
        "the residency cliff must be dramatic: {resident_max:.2} vs {swapping_min:.2}"
    );
}

#[test]
fn e13_air_cooling_dominates_fleet_deployment() {
    let rows = cost_exp::e13_data();
    let v4i = rows.iter().find(|r| r.chip == "TPUv4i").unwrap();
    let v3 = rows.iter().find(|r| r.chip == "TPUv3").unwrap();
    let v2 = rows.iter().find(|r| r.chip == "TPUv2").unwrap();
    assert_eq!(v4i.cooling, "air");
    assert_eq!(v2.cooling, "air"); // 280 W still deployed air-cooled
    assert_eq!(v3.cooling, "liquid");
    assert!(v4i.fleet_weighted > 5.0 * v3.fleet_weighted);
}

#[test]
fn e14_backwards_compat_end_to_end() {
    let r = numerics_exp::e14_data();
    assert!(r.v3_order_bit_exact, "v2/v3 numerics must be free on v4i");
    assert!(r.v1_order_differs, "v1 numerics must differ natively");
    assert!(
        r.v1_emulation_overhead >= 1.0 && r.v1_emulation_overhead < 1.5,
        "emulation should cost a little, not a lot: {:.3}x",
        r.v1_emulation_overhead
    );
    let (exact, reval, quant) = r.deploy_days;
    assert!(exact * 5.0 < reval && reval < quant);
}

#[test]
fn all_experiments_render() {
    for id in tpu_bench::ALL_EXPERIMENTS {
        let out = tpu_bench::run_experiment(id).unwrap_or_else(|| panic!("missing {id}"));
        assert!(out.len() > 100, "{id} output suspiciously short");
    }
    assert!(tpu_bench::run_experiment("nope").is_none());
}
