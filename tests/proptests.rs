//! Cross-crate property tests: arbitrary graphs through the whole
//! compile→simulate pipeline, and serving-statistics invariants.

use proptest::prelude::*;

use tpugen::hlo::{compile, CompilerOptions, Graph};
use tpugen::prelude::*;
use tpugen::serving::des::{simulate, ServingConfig};

/// Strategy: a random MLP-shaped graph (chain of dot+relu layers).
fn random_mlp() -> impl Strategy<Value = Graph> {
    (
        1u64..48,                               // batch
        prop::collection::vec(1u64..300, 2..6), // layer widths
    )
        .prop_map(|(batch, widths)| {
            let mut g = Graph::new("prop-mlp", DType::Bf16);
            let mut x = g.parameter(&[batch, widths[0]]).expect("valid dims");
            for w in widths.windows(2) {
                let wt = g.constant(&[w[0], w[1]]).expect("valid dims");
                x = g.dot(x, wt).expect("chained dims match");
                x = g.relu(x).expect("same shape");
            }
            g.mark_output(x);
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed graph compiles and simulates on every generation,
    /// and the simulator executes exactly the planned work.
    #[test]
    fn compile_simulate_conserves_flops(g in random_mlp()) {
        for chip in [catalog::tpu_v4i(), catalog::tpu_v3(), catalog::tpu_v1()] {
            let exe = compile(&g, &chip, &CompilerOptions::default()).unwrap();
            let report = Simulator::new(chip.clone()).run(exe.plan()).unwrap();
            prop_assert_eq!(report.flops, exe.plan().total_flops());
            prop_assert!(report.seconds > 0.0);
            prop_assert!(report.seconds.is_finite());
        }
    }

    /// Weight placement moves traffic between channels without creating
    /// or destroying bytes.
    #[test]
    fn traffic_is_conserved_across_placement(g in random_mlp()) {
        let chip = catalog::tpu_v4i();
        let with = compile(&g, &chip, &CompilerOptions::default()).unwrap();
        let without = compile(&g, &chip, &CompilerOptions::no_cmem()).unwrap();
        let (h1, c1) = with.plan().channel_traffic();
        let (h0, c0) = without.plan().channel_traffic();
        prop_assert_eq!(c0, 0);
        prop_assert_eq!(h1 + c1, h0);
        prop_assert!(h1 <= h0);
    }

    /// Simulated latency is monotone in batch size.
    #[test]
    fn latency_monotone_in_batch(
        widths in prop::collection::vec(8u64..200, 2..5),
        batch in 1u64..32,
    ) {
        let build = |b: u64| {
            let mut g = Graph::new("m", DType::Bf16);
            let mut x = g.parameter(&[b, widths[0]]).unwrap();
            for w in widths.windows(2) {
                let wt = g.constant(&[w[0], w[1]]).unwrap();
                x = g.dot(x, wt).unwrap();
            }
            g.mark_output(x);
            g
        };
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let t_small = sim
            .run(compile(&build(batch), &chip, &CompilerOptions::default()).unwrap().plan())
            .unwrap()
            .seconds;
        let t_big = sim
            .run(compile(&build(batch * 4), &chip, &CompilerOptions::default()).unwrap().plan())
            .unwrap()
            .seconds;
        prop_assert!(t_big >= t_small * 0.999, "batch {batch}: {t_small} -> {t_big}");
    }

    /// Compiled programs round-trip their generation's binary encoding
    /// and refuse the others.
    #[test]
    fn binaries_round_trip_and_do_not_cross(g in random_mlp()) {
        let v4i = catalog::tpu_v4i();
        let v2 = catalog::tpu_v2();
        let exe = compile(&g, &v4i, &CompilerOptions::default()).unwrap();
        let bytes = exe.binary().unwrap();
        let back = tpugen::isa::decode(&bytes, Generation::TpuV4i).unwrap();
        prop_assert_eq!(&back, exe.program());
        prop_assert!(tpugen::isa::decode(&bytes, Generation::TpuV2).is_err());
        let exe2 = compile(&g, &v2, &CompilerOptions::no_cmem()).unwrap();
        prop_assert!(tpugen::isa::decode(&exe2.binary().unwrap(), Generation::TpuV4i).is_err());
    }

    /// More CMEM budget never slows a model down.
    #[test]
    fn cmem_budget_monotonicity(g in random_mlp(), budget_mib in 0u64..128) {
        let chip = catalog::tpu_v4i();
        let sim = Simulator::new(chip.clone());
        let t_small = sim
            .run(
                compile(&g, &chip, &CompilerOptions::with_cmem_budget(budget_mib << 20))
                    .unwrap()
                    .plan(),
            )
            .unwrap()
            .seconds;
        let t_big = sim
            .run(
                compile(&g, &chip, &CompilerOptions::with_cmem_budget((budget_mib + 64) << 20))
                    .unwrap()
                    .plan(),
            )
            .unwrap()
            .seconds;
        prop_assert!(t_big <= t_small * 1.001, "{t_small} -> {t_big}");
    }

    /// Serving statistics invariants: percentile ordering, request
    /// conservation, throughput bounded by arrival rate.
    #[test]
    fn serving_statistics_invariants(
        rate in 50.0f64..20_000.0,
        max_batch in 1u64..64,
        requests in 200usize..2000,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel::from_points(vec![(1, 0.001), (64, 0.004)]).unwrap();
        let report = simulate(
            &model,
            &ServingConfig {
                arrival_rate_rps: rate,
                max_batch,
                batch_timeout_s: 0.002,
                requests,
                seed,
            },
        )
        .expect("valid random config");
        prop_assert_eq!(report.stats.n, requests);
        prop_assert!(report.conservation_holds());
        prop_assert!(report.p50_s <= report.p99_s + 1e-12);
        prop_assert!(report.p99_s <= report.stats.max_s + 1e-12);
        prop_assert!(report.mean_batch >= 1.0 - 1e-9);
        prop_assert!(report.mean_batch <= max_batch as f64 + 1e-9);
        prop_assert!(report.server_utilization <= 1.0);
        // Completed work cannot outpace arrivals by more than the final
        // drain (loose bound: 2x).
        prop_assert!(report.throughput_rps <= 2.0 * rate);
    }
}
