//! Determinism properties of the parallel substrates: multi-seed
//! replication must be a pure, order-preserving fan-out, so a parallel
//! sweep is byte-identical to a sequential one — the invariant the
//! `--jobs` flag and the CI bench-smoke job rely on.

use proptest::prelude::*;

use tpu_bench::multiseed::MultiSeedRunner;
use tpugen::prelude::*;
use tpugen::serving::des::{
    simulate_fleet, simulate_fleet_with_faults, FleetConfig, FleetPolicy, RetryPolicy,
    ServingConfig,
};

/// A small overloaded fleet run, seeded; returns a bit-exact digest of
/// the report (floats by their IEEE bits, so `==` means *identical*,
/// not merely close).
fn fleet_digest(seed: u64, rate: f64, requests: usize) -> Vec<u64> {
    let model = LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid");
    let base = ServingConfig {
        arrival_rate_rps: rate,
        max_batch: 16,
        batch_timeout_s: 0.002,
        requests,
        seed,
    };
    let fleet = FleetConfig::new(base.with_servers(2)).with_policy(FleetPolicy {
        deadline_s: Some(0.05),
        shed_expired: true,
        queue_budget_s: Some(0.04),
        queue_cap: Some(128),
        retry: RetryPolicy {
            max_retries: 1,
            backoff_s: 0.002,
            backoff_mult: 2.0,
        },
    });
    let r = simulate_fleet(&model, &fleet).expect("valid config");
    assert!(r.conservation_holds());
    vec![
        r.goodput_rps.to_bits(),
        r.throughput_rps.to_bits(),
        r.p99_s.to_bits(),
        r.duration_s.to_bits(),
        r.arrivals as u64,
        r.completed as u64,
        r.shed as u64,
        r.dropped as u64,
        r.failed as u64,
        r.metrics.events_processed.get(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MultiSeedRunner's parallel fan-out returns bit-identical results
    /// to the sequential fold, in the same order, for real DES runs.
    #[test]
    fn parallel_replication_matches_sequential(
        base_seed in 0u64..1_000_000,
        reps in 1usize..5,
        rate in 2_000f64..12_000f64,
    ) {
        let runner = MultiSeedRunner::new(base_seed, reps);
        let par = runner.run(|seed| fleet_digest(seed, rate, 600));
        let seq = runner.run_sequential(|seed| fleet_digest(seed, rate, 600));
        prop_assert_eq!(par, seq);
    }

    /// The worker-pool primitive itself preserves order and values at
    /// every thread count, including more threads than items.
    #[test]
    fn par_map_with_is_order_preserving(
        base_seed in 0u64..1_000_000,
        threads in 2usize..6,
    ) {
        let seeds = MultiSeedRunner::new(base_seed, 4).seeds();
        let par = tpu_par::par_map_with(threads, &seeds, |&s| fleet_digest(s, 6_000.0, 400));
        let seq: Vec<_> = seeds.iter().map(|&s| fleet_digest(s, 6_000.0, 400)).collect();
        prop_assert_eq!(par, seq);
    }
}

/// The chaos path (faults + failover + probes) is replay-deterministic
/// too: same seed, same report, across parallel and sequential runs.
#[test]
fn chaos_replication_is_deterministic() {
    let model = LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid");
    let digest = |seed: u64| {
        let base = ServingConfig {
            arrival_rate_rps: 9_000.0,
            max_batch: 16,
            batch_timeout_s: 0.001,
            requests: 1_500,
            seed,
        };
        let fleet = FleetConfig::new(base.with_servers(3)).with_policy(FleetPolicy {
            deadline_s: Some(0.02),
            shed_expired: true,
            queue_budget_s: Some(0.015),
            queue_cap: Some(64),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
        });
        let plan = FaultPlan {
            scheduled: Vec::new(),
            mtbf: Some(MtbfFaults {
                mtbf_s: 0.1,
                mttr_s: 0.02,
                horizon_s: 0.5,
            }),
            fault_seed: 7,
            failover: FailoverConfig {
                enabled: true,
                probe_interval_s: 0.002,
                probe_timeout_s: 0.001,
                recovery_warmup_s: 0.005,
            },
        };
        let r = simulate_fleet_with_faults(&model, &fleet, &plan).expect("valid config");
        assert!(r.conservation_holds());
        (
            r.goodput_rps.to_bits(),
            r.p99_s.to_bits(),
            r.metrics.events_processed.get(),
            r.metrics.failures_detected.get(),
            r.metrics.failover_redistributed.get(),
        )
    };
    let runner = MultiSeedRunner::new(17, 4);
    let par = runner.run(digest);
    let seq = runner.run_sequential(digest);
    assert_eq!(par, seq);
    // And re-running the whole fan-out reproduces itself exactly.
    assert_eq!(runner.run(digest), par);
}

/// The planet-scale layer keeps the contract: a global run — geo
/// load-balancer, correlated cell faults, autoscaler, per-cell DES —
/// is a pure function of (config, seed), so a parallel multi-seed
/// sweep over it is bit-identical to the sequential fold.
#[test]
fn global_fleet_replication_is_deterministic() {
    use tpugen::serving::fleet::{
        simulate_global, AutoscalerConfig, Cell, CellFault, CellFaultKind, GeoPolicy, GlobalConfig,
        TrafficModel,
    };

    let model = LatencyModel::from_points(vec![(1, 0.001), (128, 0.008)]).expect("valid");
    let digest = |seed: u64| {
        let template = FleetConfig::new(
            ServingConfig {
                arrival_rate_rps: 1.0,
                max_batch: 16,
                batch_timeout_s: 0.002,
                requests: 1,
                seed: 0,
            }
            .with_servers(2),
        )
        .with_policy(FleetPolicy {
            deadline_s: Some(0.05),
            shed_expired: true,
            queue_budget_s: Some(0.04),
            queue_cap: Some(256),
            retry: RetryPolicy {
                max_retries: 1,
                backoff_s: 0.002,
                backoff_mult: 2.0,
            },
        });
        let cfg = GlobalConfig {
            cells: (0..3).map(|_| Cell::new(template, 2500.0, 5)).collect(),
            traffic: TrafficModel::diurnal(8_000.0, 0.3, 1.0).with_flash(0.4, 0.2, 1.6),
            cell_faults: vec![CellFault {
                cell: 0,
                at_s: 0.33,
                duration_s: 0.3,
                kind: CellFaultKind::Outage,
            }],
            autoscaler: AutoscalerConfig::default(),
            geo: GeoPolicy {
                redirect_latency_s: 0.01,
                ..GeoPolicy::default()
            },
            epoch_s: 0.1,
            horizon_s: 0.8,
            seed,
        };
        let r = simulate_global(&model, &cfg).expect("valid config");
        assert!(r.conservation_holds());
        (
            r.arrivals,
            r.good,
            r.redirected,
            r.p99_s.to_bits(),
            r.availability.to_bits(),
            r.metrics.events_processed.get(),
            r.autoscaler.scale_ups,
        )
    };
    let runner = MultiSeedRunner::new(23, 4);
    let par = runner.run(digest);
    let seq = runner.run_sequential(digest);
    assert_eq!(par, seq);
    assert_eq!(runner.run(digest), par);
}
